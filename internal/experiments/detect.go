package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dgc/internal/cluster"
	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// DetectRow is one cell of the detection-round scaling measurement: a full
// DCDA collection of a `procs`-process garbage ring, the workload whose cost
// is dominated by CDM derivation (algebra clone/merge/match) and CDM
// encoding.
type DetectRow struct {
	Procs    int           `json:"procs"`
	Wall     time.Duration `json:"wall_ns"`
	CDMsSent uint64        `json:"cdms_sent"`
	Allocs   uint64        `json:"allocs"`
	Rounds   int           `json:"rounds"`
}

// DetectRoundScale measures full ring collections across process counts.
// Each cell reports the best wall time of reps runs and the allocation count
// of that run (runtime.Mallocs delta, single-threaded schedule).
func DetectRoundScale(procSizes []int, reps int) ([]DetectRow, error) {
	if reps < 1 {
		reps = 1
	}
	rows := make([]DetectRow, 0, len(procSizes))
	for _, procs := range procSizes {
		var best DetectRow
		for r := 0; r < reps; r++ {
			cfg := node.Config{}
			c := cluster.New(1, cfg)
			c.SetWorkers(1) // sequential: measure the hot path, not the pool
			if _, err := c.Materialize(workload.Ring(procs, 2), cfg); err != nil {
				return nil, err
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			rounds := 0
			for c.TotalObjects() > 0 && rounds < procs*3+10 {
				c.GCRound()
				rounds++
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if c.TotalObjects() != 0 {
				return nil, fmt.Errorf("experiments: ring %d not collected", procs)
			}
			var cdms uint64
			for _, s := range c.Stats() {
				cdms += s.Detector.CDMsSent
			}
			row := DetectRow{
				Procs:    procs,
				Wall:     wall,
				CDMsSent: cdms,
				Allocs:   after.Mallocs - before.Mallocs,
				Rounds:   rounds,
			}
			if best.Wall == 0 || wall < best.Wall {
				best = row
			}
		}
		rows = append(rows, best)
	}
	return rows, nil
}

// HopRow reports the cost of one CDM hop derivation at a given algebra size:
// clone the accumulated algebra, extend it with one target and one source,
// check its match status, compare against the parent, flatten to a wire CDM
// and append-encode it into a reused frame buffer. This is exactly the
// per-hop work of Detector.expand plus the node/TCP send fast path (which
// encodes into pooled frames rather than allocating per message).
type HopRow struct {
	Entries   int           `json:"entries"`
	PerHop    time.Duration `json:"per_hop_ns"`
	AllocsPer float64       `json:"allocs_per_hop"`
	CDMBytes  int           `json:"cdm_bytes"`
}

// CDMHopScale measures the hop-path cost across algebra sizes. iters hops
// are timed per cell; allocations are a per-hop average over the batch.
func CDMHopScale(sizes []int, iters int) ([]HopRow, error) {
	if iters < 1 {
		iters = 1
	}
	rows := make([]HopRow, 0, len(sizes))
	for _, n := range sizes {
		alg := core.NewAlg()
		for i := 0; i < n; i++ {
			r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
			alg.AddSource(r, uint64(i))
			if i%2 == 0 {
				alg.AddTarget(r, uint64(i))
			}
		}
		det := core.DetectionID{Origin: "P1", Seq: 1}
		along := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P1", Obj: 1}}
		newSrc := ids.RefID{Src: "P8", Dst: ids.GlobalRef{Node: "P9", Obj: 7}}
		var bytes int
		frame := make([]byte, 0, 4096) // reused like the TCP frame pool
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			derived := alg.Clone()
			derived.AddTarget(along, 3)
			derived.AddSource(newSrc, 4)
			if _, abort := derived.MatchStatus(); abort {
				return nil, fmt.Errorf("experiments: unexpected abort at size %d", n)
			}
			if derived.Equal(alg) {
				return nil, fmt.Errorf("experiments: derivation did not grow at size %d", n)
			}
			msg := wire.NewCDMFromAlg(det, along, derived, int(uint32(i)%8), core.TraceIDFor(det))
			frame = wire.AppendEncode(frame[:0], msg)
			bytes = len(frame)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		rows = append(rows, HopRow{
			Entries:   n,
			PerHop:    wall / time.Duration(iters),
			AllocsPer: float64(after.Mallocs-before.Mallocs) / float64(iters),
			CDMBytes:  bytes,
		})
	}
	return rows, nil
}

// DetectBaseline returns the recorded detection-round measurements of the
// retired string-map algebra and per-message allocating codec (the
// implementation before the interned dense representation), captured with the
// same DetectRoundScale harness on this repo's reference machine. Kept
// hardcoded so speedup tables survive the old implementation's removal.
func DetectBaseline() []DetectRow {
	return []DetectRow{
		{Procs: 8, Wall: 561968 * time.Nanosecond, CDMsSent: 64, Allocs: 2642, Rounds: 2},
		{Procs: 32, Wall: 24293409 * time.Nanosecond, CDMsSent: 1024, Allocs: 43051, Rounds: 2},
	}
}

// CDMHopBaseline returns the recorded per-hop costs of the retired map
// algebra: every hop re-hashed and re-copied all string keys on clone, sorted
// by reference strings on flatten, and allocated a fresh buffer per encode.
func CDMHopBaseline() []HopRow {
	return []HopRow{
		{Entries: 16, PerHop: 10938 * time.Nanosecond, AllocsPer: 27.0, CDMBytes: 212},
		{Entries: 64, PerHop: 37518 * time.Nanosecond, AllocsPer: 31.0, CDMBytes: 740},
		{Entries: 256, PerHop: 162828 * time.Nanosecond, AllocsPer: 39.0, CDMBytes: 3173},
	}
}

// WireRow reports codec throughput for a CDM of a given entry count.
type WireRow struct {
	Entries   int           `json:"entries"`
	EncodeNs  time.Duration `json:"encode_ns"`
	DecodeNs  time.Duration `json:"decode_ns"`
	EncAllocs float64       `json:"encode_allocs_per_op"`
	DecAllocs float64       `json:"decode_allocs_per_op"`
	Bytes     int           `json:"bytes"`
}

// WireCodecScale measures CDM encode/decode across entry counts.
func WireCodecScale(sizes []int, iters int) ([]WireRow, error) {
	if iters < 1 {
		iters = 1
	}
	rows := make([]WireRow, 0, len(sizes))
	for _, n := range sizes {
		alg := core.NewAlg()
		for i := 0; i < n; i++ {
			r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
			alg.AddSource(r, uint64(i))
			alg.AddTarget(r, uint64(i))
		}
		msg := wire.NewCDM(core.DetectionID{Origin: "P1", Seq: 9},
			ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}}, alg, 7)
		data := wire.Encode(msg)

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			wire.Encode(msg)
		}
		encWall := time.Since(start)
		runtime.ReadMemStats(&after)
		encAllocs := float64(after.Mallocs-before.Mallocs) / float64(iters)

		runtime.GC()
		runtime.ReadMemStats(&before)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := wire.Decode(data); err != nil {
				return nil, err
			}
		}
		decWall := time.Since(start)
		runtime.ReadMemStats(&after)

		rows = append(rows, WireRow{
			Entries:   n,
			EncodeNs:  encWall / time.Duration(iters),
			DecodeNs:  decWall / time.Duration(iters),
			EncAllocs: encAllocs,
			DecAllocs: float64(after.Mallocs-before.Mallocs) / float64(iters),
			Bytes:     len(data),
		})
	}
	return rows, nil
}

// WireBaseline returns the recorded codec measurements before buffer pooling
// and decoder NodeID interning: Encode allocated and grew its buffer per
// message, and Decode allocated a string per NodeID and entry field.
func WireBaseline() []WireRow {
	return []WireRow{
		{Entries: 16, EncodeNs: 408, DecodeNs: 1979, EncAllocs: 3, DecAllocs: 41, Bytes: 190},
		{Entries: 64, EncodeNs: 1297, DecodeNs: 7391, EncAllocs: 5, DecAllocs: 139, Bytes: 718},
		{Entries: 256, EncodeNs: 6000, DecodeNs: 25682, EncAllocs: 9, DecAllocs: 525, Bytes: 3215},
	}
}
