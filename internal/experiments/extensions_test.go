package experiments

import (
	"testing"
)

func TestLeaseAblationShowsUnsafety(t *testing.T) {
	rows, err := LeaseAblation([]uint64{1, 3, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Plain reference listing is safe at every silence length.
		if r.PlainReclaimed {
			t.Fatalf("plain reference listing reclaimed a live object: %+v", r)
		}
	}
	// Short silence (within the lease): leases are fine too.
	if rows[0].LeaseReclaimed {
		t.Errorf("lease expired within its duration: %+v", rows[0])
	}
	// Long silence (beyond the lease): the leased collector reclaims a
	// LIVE object — the unsafety the ablation demonstrates.
	if !rows[2].LeaseReclaimed {
		t.Errorf("long silence did not expose lease unsafety: %+v", rows[2])
	}
	if rows[2].LeaseRenewalMsg == 0 {
		t.Errorf("no renewal traffic counted: %+v", rows[2])
	}
}

func TestDisruptionShapes(t *testing.T) {
	rows, err := Disruption(3000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCodec := map[string]DisruptionRow{}
	for _, r := range rows {
		byCodec[r.Codec] = r
		if r.SnapshotPause <= 0 || r.InvokeLatency <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
	}
	// Serializing costs more than not serializing; the naive codec costs
	// the most (the paper's Rotor pain).
	if byCodec["binary"].SnapshotPause < byCodec["none"].SnapshotPause {
		t.Logf("note: binary pause below summarize-only (noise): %+v", rows)
	}
	if byCodec["reflect"].SnapshotPause <= byCodec["binary"].SnapshotPause {
		t.Errorf("reflect pause (%v) not above binary (%v)",
			byCodec["reflect"].SnapshotPause, byCodec["binary"].SnapshotPause)
	}
	// And the pause dwarfs a single invocation — the reason snapshots are
	// taken "only sporadically" (§4).
	if byCodec["reflect"].SnapshotPause < byCodec["reflect"].InvokeLatency {
		t.Errorf("snapshot pause below one invocation: %+v", byCodec["reflect"])
	}
}
