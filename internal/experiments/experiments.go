// Package experiments implements the paper's evaluation (§4) and the
// extended experiments listed in DESIGN.md as reusable, deterministic
// procedures. cmd/dgc-bench prints them as tables; the repository-root
// benchmarks wrap them in testing.B loops; EXPERIMENTS.md records their
// output against the paper's numbers.
package experiments

import (
	"fmt"
	"time"

	"dgc/internal/baseline"
	"dgc/internal/cluster"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/snapshot"
	"dgc/internal/transport"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// ---- Table 1: RMI overhead ------------------------------------------------
//
// "Table 1 shows results for increasing series of remote invocations of a
//  remote method, with 10 arguments (10 different references being
//  exported/imported), where client and server processes execute in the
//  same machine. This forces the DGC to create 10 scions and stubs each
//  time the remote method is invoked."

// Table1Row is one line of the Table 1 reproduction.
type Table1Row struct {
	Calls        int
	Plain        time.Duration // DGC instrumentation off
	WithDGC      time.Duration // stub/scion creation + IC piggy-backing on
	VariationPct float64
}

// RMIWorkload drives the Table 1 call pattern on a fresh two-node cluster.
type RMIWorkload struct {
	c       *cluster.Cluster
	client  *node.Node
	holder  ids.ObjID
	target  ids.GlobalRef
	argsPer int
}

// TCPRMIWorkload is the Table 1 workload over real loopback sockets:
// "client and server processes execute in the same machine". The paper's
// 7–21% band comes from stub/scion creation measured against a realistic
// remoting cost; the TCP path (frame encode/decode plus kernel round trip)
// provides that base line, where the in-process fabric would make the
// bookkeeping look enormous in relative terms.
type TCPRMIWorkload struct {
	client, server *node.Node
	epc, eps       *transport.TCPEndpoint
	holder         ids.ObjID
	target         ids.GlobalRef
	argsPer        int
	done           chan bool
}

// NewTCPRMIWorkload builds the client/server pair on ephemeral loopback
// ports. Close releases the sockets.
func NewTCPRMIWorkload(argsPer int, disableDGC bool) (*TCPRMIWorkload, error) {
	epc, err := transport.ListenTCP("client", "127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	eps, err := transport.ListenTCP("server", "127.0.0.1:0", nil)
	if err != nil {
		epc.Close()
		return nil, err
	}
	epc.AddPeer("server", eps.Addr())
	eps.AddPeer("client", epc.Addr())

	cfg := node.Config{DisableDGC: disableDGC}
	w := &TCPRMIWorkload{
		epc: epc, eps: eps, argsPer: argsPer,
		client: node.New("client", epc, cfg),
		server: node.New("server", eps, cfg),
		done:   make(chan bool, 1),
	}
	var serverObj ids.ObjID
	w.server.With(func(m node.Mutator) {
		serverObj = m.Alloc(nil)
		if err := m.Root(serverObj); err != nil {
			panic(err)
		}
	})
	w.target = ids.GlobalRef{Node: "server", Obj: serverObj}
	w.client.With(func(m node.Mutator) {
		w.holder = m.Alloc(nil)
		if err := m.Root(w.holder); err != nil {
			panic(err)
		}
	})
	if !disableDGC {
		if err := w.server.EnsureScionFor("client", serverObj); err != nil {
			return nil, err
		}
		if err := w.client.HoldRemote(w.holder, w.target); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Call performs one synchronous remote invocation over TCP, exporting
// argsPer fresh references.
func (w *TCPRMIWorkload) Call() error {
	args := make([]ids.GlobalRef, w.argsPer)
	var err error
	w.client.With(func(m node.Mutator) {
		for i := range args {
			obj := m.Alloc(nil)
			if e := m.Link(w.holder, obj); e != nil && err == nil {
				err = e
			}
			args[i] = m.GlobalRef(obj)
		}
	})
	if err != nil {
		return err
	}
	if err := w.client.Invoke(w.target, "noop", args, func(_ node.Mutator, r node.Reply) {
		w.done <- r.OK
	}); err != nil {
		return err
	}
	select {
	case ok := <-w.done:
		if !ok {
			return fmt.Errorf("experiments: TCP RMI call failed")
		}
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("experiments: TCP RMI call timed out")
	}
}

// Close releases the sockets.
func (w *TCPRMIWorkload) Close() {
	w.epc.Close()
	w.eps.Close()
}

// NewRMIWorkload builds the client/server pair. argsPer references are
// exported per call (the paper uses 10). disableDGC turns the collector's
// invocation-path bookkeeping off (the "Rotor" column).
func NewRMIWorkload(argsPer int, disableDGC bool) (*RMIWorkload, error) {
	cfg := node.Config{DisableDGC: disableDGC}
	c := cluster.New(1, cfg, "client", "server")
	w := &RMIWorkload{c: c, client: c.Node("client"), argsPer: argsPer}

	var serverObj ids.ObjID
	c.Node("server").With(func(m node.Mutator) {
		serverObj = m.Alloc(nil)
		if err := m.Root(serverObj); err != nil {
			panic(err)
		}
	})
	w.target = ids.GlobalRef{Node: "server", Obj: serverObj}
	w.client.With(func(m node.Mutator) {
		w.holder = m.Alloc(nil)
		if err := m.Root(w.holder); err != nil {
			panic(err)
		}
	})
	if !disableDGC {
		if err := c.Connect("client", w.holder, "server", serverObj); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Call performs one remote invocation exporting argsPer fresh references,
// settling the network (client and server "on the same machine"). The
// method is noop: the measured work is exactly the reference
// export/import path — the paper's "10 different references being
// exported/imported ... forces the DGC to create 10 scions and stubs each
// time" — and the application work is identical in both modes.
func (w *RMIWorkload) Call() error {
	args := make([]ids.GlobalRef, w.argsPer)
	var err error
	w.client.With(func(m node.Mutator) {
		for i := range args {
			obj := m.Alloc(nil)
			if e := m.Link(w.holder, obj); e != nil && err == nil {
				err = e
			}
			args[i] = m.GlobalRef(obj)
		}
	})
	if err != nil {
		return err
	}
	ok := false
	if err := w.client.Invoke(w.target, "noop", args, func(_ node.Mutator, r node.Reply) {
		ok = r.OK
	}); err != nil {
		return err
	}
	w.c.Settle()
	if !ok {
		return fmt.Errorf("experiments: RMI call failed")
	}
	return nil
}

// Table1 reproduces the paper's Table 1 for the given call counts. Each
// series is measured over several alternating repetitions and the minimum
// duration per mode is reported, suppressing scheduler and allocator noise
// (the paper ran on a dedicated machine; we do not).
func Table1(callCounts []int, argsPer int) ([]Table1Row, error) {
	const reps = 5
	rows := make([]Table1Row, 0, len(callCounts))
	for _, n := range callCounts {
		plain, withDGC := time.Duration(0), time.Duration(0)
		for r := 0; r < reps; r++ {
			p, err := timeRMISeries(n, argsPer, true)
			if err != nil {
				return nil, err
			}
			d, err := timeRMISeries(n, argsPer, false)
			if err != nil {
				return nil, err
			}
			if r == 0 || p < plain {
				plain = p
			}
			if r == 0 || d < withDGC {
				withDGC = d
			}
		}
		rows = append(rows, Table1Row{
			Calls:        n,
			Plain:        plain,
			WithDGC:      withDGC,
			VariationPct: 100 * (float64(withDGC)/float64(plain) - 1),
		})
	}
	return rows, nil
}

func timeRMISeries(calls, argsPer int, disableDGC bool) (time.Duration, error) {
	w, err := NewTCPRMIWorkload(argsPer, disableDGC)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	// Warm up the connections, allocator and tables.
	for i := 0; i < 5; i++ {
		if err := w.Call(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		if err := w.Call(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// ---- Serialization (§4 prose) ----------------------------------------------
//
// "On average, for graphs with 10000 linked dummy objects (just holding a
//  reference), Rotor serialization takes 26037 ms. To serialize the same
//  graph, with every object containing an additional remote reference
//  (additional 10000 stubs), takes 45125 ms (73% more). [...] we
//  re-implemented the algorithm [...] on top of the commercial version of
//  .Net [...] serialization times are, roughly, 100 times faster."

// SerializationRow is one line of the serialization experiment.
type SerializationRow struct {
	Codec     string
	Objects   int
	WithStubs bool
	Duration  time.Duration
	Bytes     int
}

// BuildSerializationHeap constructs the experiment's graph: n linked dummy
// objects, each optionally holding one remote reference.
func BuildSerializationHeap(n int, withStubs bool) *heap.Heap {
	h := heap.New("P1")
	var prev ids.ObjID
	for i := 0; i < n; i++ {
		o := h.Alloc(nil)
		if prev != 0 {
			if err := h.AddLocalRef(prev, o.ID); err != nil {
				panic(err)
			}
		}
		if withStubs {
			if err := h.AddRemoteRef(o.ID, ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i + 1)}); err != nil {
				panic(err)
			}
		}
		prev = o.ID
	}
	if err := h.AddRoot(1); err != nil {
		panic(err)
	}
	return h
}

// Serialization measures snapshot serialization time for both codecs, with
// and without the extra remote references, repeated `reps` times each
// (duration is the mean).
func Serialization(objects, reps int) ([]SerializationRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []SerializationRow
	for _, codec := range []snapshot.Codec{snapshot.ReflectCodec{}, snapshot.BinaryCodec{}} {
		for _, withStubs := range []bool{false, true} {
			h := BuildSerializationHeap(objects, withStubs)
			if _, err := codec.Encode(h); err != nil { // warm-up, untimed
				return nil, err
			}
			var total time.Duration
			var size int
			for r := 0; r < reps; r++ {
				start := time.Now()
				data, err := codec.Encode(h)
				if err != nil {
					return nil, err
				}
				total += time.Since(start)
				size = len(data)
			}
			rows = append(rows, SerializationRow{
				Codec:     codec.Name(),
				Objects:   objects,
				WithStubs: withStubs,
				Duration:  total / time.Duration(reps),
				Bytes:     size,
			})
		}
	}
	return rows, nil
}

// ---- detection scale (Fig 3 generalized) -----------------------------------

// ScaleRow reports one ring size's detection cost.
type ScaleRow struct {
	Procs          int
	ObjectsPerProc int
	CDMsSent       uint64
	CDMBytes       uint64
	RoundsToEmpty  int
	Wall           time.Duration
}

// DetectionScale measures DCDA cost against ring size.
func DetectionScale(procSizes []int, chain int) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, len(procSizes))
	for _, procs := range procSizes {
		cfg := node.Config{}
		c := cluster.New(1, cfg)
		if _, err := c.Materialize(workload.Ring(procs, chain), cfg); err != nil {
			return nil, err
		}
		start := time.Now()
		rounds := 0
		for c.TotalObjects() > 0 && rounds < procs*3+10 {
			c.GCRound()
			rounds++
		}
		wall := time.Since(start)
		if c.TotalObjects() != 0 {
			return nil, fmt.Errorf("experiments: ring %d not collected", procs)
		}
		var cdms uint64
		for _, s := range c.Stats() {
			cdms += s.Detector.CDMsSent
		}
		sent, _, _ := c.Net.Counts()
		_ = sent
		rows = append(rows, ScaleRow{
			Procs:          procs,
			ObjectsPerProc: chain,
			CDMsSent:       cdms,
			CDMBytes:       cdmBytes(c.Net),
			RoundsToEmpty:  rounds,
			Wall:           wall,
		})
	}
	return rows, nil
}

func cdmBytes(n *transport.Network) uint64 {
	// Approximation: the network tracks total bytes; CDM share is not
	// split out per kind, so report total protocol bytes instead.
	return n.BytesSent()
}

// ---- baseline comparison ----------------------------------------------------

// CompareRow reports one collector's cost on one topology.
type CompareRow struct {
	Collector string
	Topology  string
	Messages  uint64 // collector-protocol messages
	Rounds    int
	Collected bool
}

// CompareCollectors runs the DCDA and both baselines on the same topology
// until reclamation (or the round limit) and reports message costs.
func CompareCollectors(topo *workload.Topology, maxRounds int) ([]CompareRow, error) {
	var rows []CompareRow

	// DCDA.
	{
		cfg := node.Config{}
		c := cluster.New(1, cfg)
		if _, err := c.Materialize(topo, cfg); err != nil {
			return nil, err
		}
		rounds := 0
		for c.TotalObjects() > 0 && rounds < maxRounds {
			c.GCRound()
			rounds++
		}
		sent, _, _ := c.Net.Counts()
		msgs := sent[wire.KindCDM] + sent[wire.KindNewSetStubs] + sent[wire.KindDeleteScion]
		rows = append(rows, CompareRow{
			Collector: "dcda",
			Topology:  topo.Name,
			Messages:  msgs,
			Rounds:    rounds,
			Collected: c.TotalObjects() == 0,
		})
	}

	// Hughes.
	{
		w, err := baseline.Build(topo)
		if err != nil {
			return nil, err
		}
		h := baseline.NewHughes(w)
		rounds := 0
		for w.TotalObjects() > 0 && rounds < maxRounds+int(h.Lag)*3 {
			h.Round()
			rounds++
		}
		rows = append(rows, CompareRow{
			Collector: "hughes",
			Topology:  topo.Name,
			Messages:  h.Stats.StampMessages + h.Stats.ThresholdMessages + h.Stats.StubSetMessages,
			Rounds:    rounds,
			Collected: w.TotalObjects() == 0,
		})
	}

	// Back-tracing.
	{
		w, err := baseline.Build(topo)
		if err != nil {
			return nil, err
		}
		b := baseline.NewBacktracer(w)
		rounds := 0
		for w.TotalObjects() > 0 && rounds < maxRounds {
			if err := b.Round(); err != nil {
				return nil, err
			}
			rounds++
		}
		rows = append(rows, CompareRow{
			Collector: "backtrace",
			Topology:  topo.Name,
			Messages:  b.Stats.Messages + b.Stats.StubSetMessages,
			Rounds:    rounds,
			Collected: w.TotalObjects() == 0,
		})
	}
	return rows, nil
}

// QuiescentCost measures each collector's message cost per round on a FULLY
// LIVE topology over `rounds` rounds: the paper's "permanent cost" argument
// — the DCDA does (almost) nothing when there is nothing to collect,
// Hughes pays every round.
func QuiescentCost(topo *workload.Topology, rounds int) ([]CompareRow, error) {
	var rows []CompareRow
	{
		cfg := node.Config{}
		c := cluster.New(1, cfg)
		if _, err := c.Materialize(topo, cfg); err != nil {
			return nil, err
		}
		for i := 0; i < rounds; i++ {
			c.GCRound()
		}
		sent, _, _ := c.Net.Counts()
		rows = append(rows, CompareRow{
			Collector: "dcda",
			Topology:  topo.Name,
			Messages:  sent[wire.KindCDM] + sent[wire.KindNewSetStubs] + sent[wire.KindDeleteScion],
			Rounds:    rounds,
			Collected: true,
		})
	}
	{
		w, err := baseline.Build(topo)
		if err != nil {
			return nil, err
		}
		h := baseline.NewHughes(w)
		for i := 0; i < rounds; i++ {
			h.Round()
		}
		rows = append(rows, CompareRow{
			Collector: "hughes",
			Topology:  topo.Name,
			Messages:  h.Stats.StampMessages + h.Stats.ThresholdMessages + h.Stats.StubSetMessages,
			Rounds:    rounds,
			Collected: true,
		})
	}
	{
		w, err := baseline.Build(topo)
		if err != nil {
			return nil, err
		}
		b := baseline.NewBacktracer(w)
		for i := 0; i < rounds; i++ {
			if err := b.Round(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, CompareRow{
			Collector: "backtrace",
			Topology:  topo.Name,
			Messages:  b.Stats.Messages + b.Stats.StubSetMessages,
			Rounds:    rounds,
			Collected: true,
		})
	}
	return rows, nil
}

// ---- loss sweep ---------------------------------------------------------------

// LossRow reports collection behaviour at one GC-message loss rate.
type LossRow struct {
	LossRate  float64
	Rounds    int
	Collected bool
}

// LossSweep measures rounds-to-reclaim for a ring under increasing GC
// message loss.
func LossSweep(rates []float64, procs, maxRounds int) ([]LossRow, error) {
	gcKinds := []wire.Kind{wire.KindNewSetStubs, wire.KindCDM, wire.KindDeleteScion}
	rows := make([]LossRow, 0, len(rates))
	for _, rate := range rates {
		cfg := node.Config{}
		c := cluster.New(7, cfg)
		if _, err := c.Materialize(workload.Ring(procs, 1), cfg); err != nil {
			return nil, err
		}
		c.Net.SetFaults(transport.Faults{LossRate: rate, Affects: gcKinds})
		rounds := 0
		for c.TotalObjects() > 0 && rounds < maxRounds {
			c.GCRound()
			rounds++
		}
		rows = append(rows, LossRow{LossRate: rate, Rounds: rounds, Collected: c.TotalObjects() == 0})
	}
	return rows, nil
}

// ---- ablation: delete mode -----------------------------------------------------

// AblationRow reports reclamation latency for one cycle-found delete mode.
type AblationRow struct {
	Mode          string
	Procs         int
	RoundsToEmpty int
}

// AblationDeleteMode compares cascade-only scion deletion (the paper's
// behaviour) against broadcast deletion after a cycle is found.
//
// To isolate the effect, only ONE node runs detections (the ring head's
// owner): with every node detecting in parallel, each process deletes its
// own scion anyway and the two modes coincide. With a single finder,
// cascade reclamation takes one reference-listing round per ring hop while
// broadcast collapses the whole cycle in the next round.
func AblationDeleteMode(procSizes []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, procs := range procSizes {
		for _, broadcast := range []bool{false, true} {
			cfg := node.Config{}
			cfg.Detector.BroadcastDelete = broadcast
			c := cluster.New(1, cfg)
			if _, err := c.Materialize(workload.Ring(procs, 1), cfg); err != nil {
				return nil, err
			}
			headOwner := c.Node("P1") // Ring places p0.o0 on P1
			rounds := 0
			for c.TotalObjects() > 0 && rounds < procs*3+10 {
				for _, n := range c.Nodes() {
					n.RunLGC()
				}
				c.Settle()
				for _, n := range c.Nodes() {
					if err := n.Summarize(); err != nil {
						return nil, err
					}
				}
				headOwner.RunDetection()
				c.Settle()
				rounds++
			}
			if c.TotalObjects() != 0 {
				return nil, fmt.Errorf("experiments: ablation ring %d not collected", procs)
			}
			mode := "cascade"
			if broadcast {
				mode = "broadcast"
			}
			rows = append(rows, AblationRow{Mode: mode, Procs: procs, RoundsToEmpty: rounds})
		}
	}
	return rows, nil
}

// ---- race abort rate (Fig 5 quantified) ----------------------------------------

// RaceRow reports detection outcomes under mutator interference.
type RaceRow struct {
	MigrationsPerRound int
	Detections         uint64
	Aborted            uint64
	CyclesFound        uint64
	FalsePositives     uint64
}

// RaceAbortRate quantifies Figure 5: a live three-process ring whose root
// migrates between processes (by reference copying through the mutator's
// RPC path) while a detection is in flight. Each migration bumps the
// invocation counters of the copied reference, so racing detections must
// abort; with zero migrations the detection simply dies at the Local.Reach
// barrier. Any false positive (a live ring object reclaimed) would be a
// safety bug; CyclesFound must therefore stay zero throughout.
func RaceAbortRate(migrationsPerRound []int, rounds int) ([]RaceRow, error) {
	var rows []RaceRow
	for _, mu := range migrationsPerRound {
		c := cluster.New(3, node.Config{})
		// The Figure 5 rig: R@P1 (rooted) -> o0 -> o1@P2 -> o2@P3 -> o0,
		// plus rooted rootB@P2 and R -> rootB for the migration path.
		p1, p2, p3 := c.Add("P1", node.Config{}), c.Add("P2", node.Config{}), c.Add("P3", node.Config{})
		var r0, o0, rootB, o1, o2 ids.ObjID
		p1.With(func(m node.Mutator) {
			r0, o0 = m.Alloc(nil), m.Alloc(nil)
			if err := m.Root(r0); err != nil {
				panic(err)
			}
			if err := m.Link(r0, o0); err != nil {
				panic(err)
			}
		})
		p2.With(func(m node.Mutator) {
			rootB, o1 = m.Alloc(nil), m.Alloc(nil)
			if err := m.Root(rootB); err != nil {
				panic(err)
			}
		})
		p3.With(func(m node.Mutator) { o2 = m.Alloc(nil) })
		for _, e := range []struct {
			fn ids.NodeID
			fo ids.ObjID
			tn ids.NodeID
			to ids.ObjID
		}{
			{"P1", o0, "P2", o1}, {"P2", o1, "P3", o2}, {"P3", o2, "P1", o0}, {"P1", r0, "P2", rootB},
		} {
			if err := c.Connect(e.fn, e.fo, e.tn, e.to); err != nil {
				return nil, err
			}
		}
		c.Settle()
		o1Ref := ids.GlobalRef{Node: "P2", Obj: o1}
		rootBRef := ids.GlobalRef{Node: "P2", Obj: rootB}
		before := c.GlobalLive()

		var det, aborted, found uint64
		for r := 0; r < rounds; r++ {
			for _, n := range c.Nodes() {
				n.RunLGC()
			}
			c.Settle()
			for _, n := range c.Nodes() {
				if err := n.Summarize(); err != nil {
					return nil, err
				}
			}
			p2.RunDetection() // candidate: scion (P1 -> o1)

			for i := 0; i < mu; i++ {
				// Root migration by reference copying: P1 exports ITS o1
				// reference into rootB (bumping the P1->o1 counters), then
				// drops its own path and re-summarizes — all while the
				// detection's CDMs are still circulating.
				if err := p1.Invoke(rootBRef, "store", []ids.GlobalRef{o1Ref}, nil); err != nil {
					return nil, err
				}
				c.Net.Drain(2)
				p1.With(func(m node.Mutator) { _ = m.Unlink(r0, o0) })
				p1.RunLGC()
				if err := p1.Summarize(); err != nil {
					return nil, err
				}
			}
			c.Settle()

			if mu > 0 {
				// Migrate back for the next round: restore P1's root path
				// and drop the copies stored in rootB.
				p1.With(func(m node.Mutator) {
					if m.Exists(o0) {
						_ = m.Link(r0, o0)
					}
				})
				p2.With(func(m node.Mutator) {
					for _, ref := range m.Refs(rootB) {
						if ref == o1Ref {
							_ = m.Drop(rootB, ref)
						}
					}
				})
				c.Settle()
			}
		}
		for _, s := range c.Stats() {
			det += s.Detector.Started
			aborted += s.Detector.Aborted
			found += s.Detector.CyclesFound
		}
		rows = append(rows, RaceRow{
			MigrationsPerRound: mu,
			Detections:         det,
			Aborted:            aborted,
			CyclesFound:        found,
			FalsePositives:     uint64(len(c.LiveViolations(before))),
		})
	}
	return rows, nil
}
