package dgc_test

import (
	"testing"
	"time"

	"dgc"
)

// The public-API tests exercise the facade exactly as a downstream user
// would: only the dgc package is imported.

func TestPublicAPIFigure3(t *testing.T) {
	c := dgc.NewCluster(1, dgc.Config{})
	refs, err := c.Materialize(dgc.Figure3(), dgc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 14 || c.TotalObjects() != 14 {
		t.Fatalf("materialized %d refs, %d objects", len(refs), c.TotalObjects())
	}
	c.CollectFully(12)
	if c.TotalObjects() != 0 {
		t.Fatalf("%d objects left", c.TotalObjects())
	}
}

func TestPublicAPITickDriven(t *testing.T) {
	// Fully periodic configuration: GC runs from Tick alone.
	cfg := dgc.Config{LGCEvery: 1, SnapshotEvery: 2, DetectEvery: 2}
	c := dgc.NewCluster(1, cfg)
	if _, err := c.Materialize(dgc.Ring(3, 2), cfg); err != nil {
		t.Fatal(err)
	}
	c.Tick(30)
	if c.TotalObjects() != 0 {
		t.Fatalf("%d objects left after ticked rounds", c.TotalObjects())
	}
}

func TestPublicAPIRPCFlow(t *testing.T) {
	c := dgc.NewCluster(1, dgc.Config{}, "A", "B")
	a, b := c.Node("A"), c.Node("B")

	// B publishes a service object; A acquires it and builds a two-node
	// cycle through RPC only.
	var service dgc.ObjID
	b.With(func(m dgc.Mutator) {
		service = m.Alloc([]byte("service"))
	})
	var holder dgc.ObjID
	a.With(func(m dgc.Mutator) {
		holder = m.Alloc(nil)
		if err := m.Root(holder); err != nil {
			t.Error(err)
		}
	})
	serviceRef := dgc.GlobalRef{Node: "B", Obj: service}
	if err := a.AcquireRemote(serviceRef, func(m dgc.Mutator, ok bool) {
		if !ok {
			t.Error("acquire failed")
			return
		}
		if err := m.Store(holder, serviceRef); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	// A asks B to allocate a child and stores a back-reference from the
	// child to A's holder: a distributed cycle held live by A's root.
	holderRef := dgc.GlobalRef{Node: "A", Obj: holder}
	if err := a.Invoke(serviceRef, "alloc-child", nil, func(m dgc.Mutator, r dgc.Reply) {
		if !r.OK || len(r.Returns) != 1 {
			t.Errorf("alloc-child: %+v", r)
			return
		}
		child := r.Returns[0]
		if err := m.Store(holder, child); err != nil {
			t.Error(err)
		}
		if err := m.Invoke(child, "store", []dgc.GlobalRef{holderRef}, nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	for i := 0; i < 5; i++ {
		c.GCRound()
	}
	if got := c.TotalObjects(); got != 3 {
		t.Fatalf("objects = %d, want 3 (holder, service, child)", got)
	}

	// Drop the root: holder, child AND the remote cycle become garbage.
	a.With(func(m dgc.Mutator) { m.Unroot(holder) })
	c.CollectFully(12)
	if got := c.TotalObjects(); got != 0 {
		t.Fatalf("objects = %d after unroot", got)
	}
}

func TestPublicAPITCP(t *testing.T) {
	// Two real-socket nodes; an acyclic remote reference is created and
	// reclaimed over TCP.
	epA, err := dgc.ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := dgc.ListenTCP("B", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("B", epB.Addr())
	epB.AddPeer("A", epA.Addr())

	a := dgc.NewNode("A", epA, dgc.Config{})
	b := dgc.NewNode("B", epB, dgc.Config{})

	var target dgc.ObjID
	b.With(func(m dgc.Mutator) { target = m.Alloc(nil) })
	var holder dgc.ObjID
	a.With(func(m dgc.Mutator) {
		holder = m.Alloc(nil)
		if err := m.Root(holder); err != nil {
			t.Error(err)
		}
	})
	ref := dgc.GlobalRef{Node: "B", Obj: target}
	done := make(chan bool, 1)
	if err := a.AcquireRemote(ref, func(m dgc.Mutator, ok bool) {
		if ok {
			if err := m.Store(holder, ref); err != nil {
				t.Error(err)
			}
		}
		done <- ok
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("acquire failed over TCP")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("acquire timed out")
	}

	// B's object survives its local GC thanks to the scion.
	b.RunLGC()
	if b.NumObjects() != 1 {
		t.Fatal("object reclaimed despite remote reference")
	}

	// A drops the reference and collects: B learns via NewSetStubs and
	// reclaims.
	a.With(func(m dgc.Mutator) {
		if err := m.Drop(holder, ref); err != nil {
			t.Error(err)
		}
	})
	a.RunLGC()
	deadline := time.Now().Add(3 * time.Second)
	for b.NumScions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("scion not dropped over TCP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.RunLGC()
	if b.NumObjects() != 0 {
		t.Fatal("garbage not reclaimed over TCP")
	}
}
