// TCP cluster: three nodes on real sockets (loopback), built and collected
// entirely through the remote-invocation API — no simulation harness and no
// manual GC driving.
//
// Each node runs a LiveRuntime: a mailbox goroutine with wall-clock tickers
// for the local collector, graph summarization and cycle detection. The
// program creates a three-process distributed cycle through RPC alone
// (acquire, alloc-child, store), verifies reference listing keeps it alive,
// drops the root, and simply waits while the periodic daemons detect and
// reclaim the cycle over the wire.
//
//	go run ./examples/tcpcluster [-metrics-addr :9090]
//
// With -metrics-addr the program serves the admin control plane for all
// three nodes while the run is in flight: collector and transport metrics at
// /metrics, structural diagnostics (tables, inflight detections with causal
// trace ids, mailbox stats) at /debug/dgc, and the /api/v1 operator API that
// dgcctl drives.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dgc"
	"dgc/internal/admin"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/dgc for the whole cluster")
	pprofMode := flag.String("pprof", "auto", "serve /debug/pprof on the metrics address: on, off, or auto (loopback only)")
	flag.Parse()

	// One metric set spans the whole in-process cluster: each node publishes
	// under its own node label, so /metrics shows all three side by side.
	metrics := dgc.NewMetricsSet()

	// Start three nodes on ephemeral loopback ports.
	names := []dgc.NodeID{"A", "B", "C"}
	eps := make(map[dgc.NodeID]*dgc.TCPEndpoint, 3)
	for _, n := range names {
		ep, err := dgc.ListenTCP(n, "127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		ep.SetMetrics(dgc.NewTransportMetrics(metrics.Node(string(n))))
		eps[n] = ep
	}
	for _, n := range names {
		for _, p := range names {
			if n != p {
				eps[n].AddPeer(p, eps[p].Addr())
			}
		}
	}
	cfg := dgc.Config{CallTimeoutTicks: 200, CandidateMinAge: 2, Metrics: metrics}
	// One journal spans the cluster (like the metric set): /api/v1/events on
	// the admin listener then streams every node's detection lifecycle.
	cfg.Trace = dgc.NewTraceLog(8192)
	rcfg := dgc.RuntimeConfig{
		Tick:             25 * time.Millisecond,
		LGCInterval:      50 * time.Millisecond,
		SnapshotInterval: 100 * time.Millisecond,
		DetectInterval:   100 * time.Millisecond,
	}
	nodes := make(map[dgc.NodeID]*dgc.LiveRuntime, 3)
	for _, n := range names {
		nodes[n] = dgc.NewLiveRuntime(n, eps[n], cfg, rcfg)
		defer nodes[n].Close()
		fmt.Printf("node %s listening on %s\n", n, eps[n].Addr())
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen %s: %v", *metricsAddr, err)
		}
		defer ln.Close()
		srv := admin.NewServer(metrics)
		if admin.PprofEnabled(*pprofMode, *metricsAddr) {
			srv.EnablePprof()
		}
		for _, n := range names {
			srv.AddNode(nodes[n])
		}
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		fmt.Printf("metrics on http://%s/metrics (events at /api/v1/events)\n", ln.Addr())
	}

	// Each node publishes one anchor object; A's anchor is rooted.
	anchors := make(map[dgc.NodeID]dgc.GlobalRef, 3)
	for _, n := range names {
		var obj dgc.ObjID
		if err := nodes[n].With(func(m dgc.Mutator) {
			obj = m.Alloc([]byte("anchor-" + string(n)))
		}); err != nil {
			log.Fatal(err)
		}
		anchors[n] = dgc.GlobalRef{Node: n, Obj: obj}
	}
	if err := nodes["A"].With(func(m dgc.Mutator) {
		if err := m.Root(anchors["A"].Obj); err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Build the ring A -> B -> C -> A through acquire + store RPCs.
	link := func(from, to dgc.NodeID) {
		done := make(chan bool, 1)
		target := anchors[to]
		holder := anchors[from].Obj
		if err := nodes[from].AcquireRemote(target, func(m dgc.Mutator, ok bool) {
			if ok {
				if err := m.Store(holder, target); err != nil {
					log.Println(err)
					ok = false
				}
			}
			done <- ok
		}); err != nil {
			log.Fatal(err)
		}
		if !waitBool(done) {
			log.Fatalf("linking %s -> %s failed", from, to)
		}
	}
	link("A", "B")
	link("B", "C")
	link("C", "A")
	fmt.Println("distributed ring A -> B -> C -> A built over TCP")

	// Let a few periodic collections pass: the ring survives (A's anchor is
	// rooted, and scions protect B and C).
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("after local GCs: %d objects alive (want 3)\n", totalObjects(nodes))

	// Drop the root: the ring is now a distributed garbage cycle that
	// reference listing cannot reclaim. The wall-clock daemons take it from
	// here — no manual GC driving.
	if err := nodes["A"].With(func(m dgc.Mutator) { m.Unroot(anchors["A"].Obj) }); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	deadline := start.Add(15 * time.Second)
	for totalObjects(nodes) > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("cycle not reclaimed in time: %d objects left", totalObjects(nodes))
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("distributed cycle reclaimed over TCP in %v ✔\n", time.Since(start).Round(time.Millisecond))

	var found uint64
	for _, n := range nodes {
		found += n.Stats().Detector.CyclesFound
	}
	fmt.Printf("cycle detections completed: %d\n", found)
}

func totalObjects(nodes map[dgc.NodeID]*dgc.LiveRuntime) int {
	total := 0
	for _, n := range nodes {
		total += n.NumObjects()
	}
	return total
}

func waitBool(ch chan bool) bool {
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		return false
	}
}
