// TCP cluster: three nodes on real sockets (loopback), built and collected
// entirely through the remote-invocation API — no simulation harness.
//
// The program creates a three-process distributed cycle through RPC alone
// (acquire, alloc-child, store), verifies reference listing keeps it alive,
// drops the root, and drives periodic GC ticks on every node until the
// cycle detector reclaims it over the wire.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"dgc"
)

func main() {
	// Start three nodes on ephemeral loopback ports.
	names := []dgc.NodeID{"A", "B", "C"}
	eps := make(map[dgc.NodeID]*dgc.TCPEndpoint, 3)
	for _, n := range names {
		ep, err := dgc.ListenTCP(n, "127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		eps[n] = ep
	}
	for _, n := range names {
		for _, p := range names {
			if n != p {
				eps[n].AddPeer(p, eps[p].Addr())
			}
		}
	}
	cfg := dgc.Config{CallTimeoutTicks: 200}
	nodes := make(map[dgc.NodeID]*dgc.Node, 3)
	for _, n := range names {
		nodes[n] = dgc.NewNode(n, eps[n], cfg)
		fmt.Printf("node %s listening on %s\n", n, eps[n].Addr())
	}

	// Each node publishes one anchor object; A's anchor is rooted.
	anchors := make(map[dgc.NodeID]dgc.GlobalRef, 3)
	for _, n := range names {
		var obj dgc.ObjID
		nodes[n].With(func(m dgc.Mutator) {
			obj = m.Alloc([]byte("anchor-" + string(n)))
		})
		anchors[n] = dgc.GlobalRef{Node: n, Obj: obj}
	}
	nodes["A"].With(func(m dgc.Mutator) {
		if err := m.Root(anchors["A"].Obj); err != nil {
			log.Fatal(err)
		}
	})

	// Build the ring A -> B -> C -> A through acquire + store RPCs.
	link := func(from, to dgc.NodeID) {
		done := make(chan bool, 1)
		target := anchors[to]
		holder := anchors[from].Obj
		if err := nodes[from].AcquireRemote(target, func(m dgc.Mutator, ok bool) {
			if ok {
				if err := m.Store(holder, target); err != nil {
					log.Println(err)
					ok = false
				}
			}
			done <- ok
		}); err != nil {
			log.Fatal(err)
		}
		if !waitBool(done) {
			log.Fatalf("linking %s -> %s failed", from, to)
		}
	}
	link("A", "B")
	link("B", "C")
	link("C", "A")
	fmt.Println("distributed ring A -> B -> C -> A built over TCP")

	// Every node collects: the ring survives (A's anchor is rooted, and
	// scions protect B and C).
	for _, n := range names {
		nodes[n].RunLGC()
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("after local GCs: %d objects alive (want 3)\n", totalObjects(nodes))

	// Drop the root: the ring is now a distributed garbage cycle that
	// reference listing cannot reclaim.
	nodes["A"].With(func(m dgc.Mutator) { m.Unroot(anchors["A"].Obj) })

	// Drive periodic GC on every node until the detector reclaims it.
	deadline := time.Now().Add(10 * time.Second)
	rounds := 0
	for totalObjects(nodes) > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("cycle not reclaimed in time: %d objects left", totalObjects(nodes))
		}
		for _, n := range names {
			nodes[n].RunLGC()
		}
		time.Sleep(50 * time.Millisecond) // let NewSetStubs land
		for _, n := range names {
			if err := nodes[n].Summarize(); err != nil {
				log.Fatal(err)
			}
		}
		for _, n := range names {
			nodes[n].RunDetection()
		}
		time.Sleep(50 * time.Millisecond) // let CDMs circulate
		rounds++
	}
	fmt.Printf("distributed cycle reclaimed over TCP in %d GC rounds ✔\n", rounds)

	var found uint64
	for _, n := range nodes {
		found += n.Stats().Detector.CyclesFound
	}
	fmt.Printf("cycle detections completed: %d\n", found)
}

func totalObjects(nodes map[dgc.NodeID]*dgc.Node) int {
	total := 0
	for _, n := range nodes {
		total += n.NumObjects()
	}
	return total
}

func waitBool(ch chan bool) bool {
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		return false
	}
}
