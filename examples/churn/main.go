// Churn: a live distributed service under continuous mutator activity and
// unreliable GC traffic.
//
// Three processes share a live ring; every process keeps invoking remote
// methods on it (allocating short-lived children that immediately become
// distributed garbage) while 20% of the collector's own messages are lost,
// duplicated or reordered. The run demonstrates the paper's two claims:
//
//   - applications are not disrupted: the mutator runs at full speed, no
//     invocation ever blocks on the collector;
//
//   - the collector is safe and complete under message faults: no live
//     object is ever reclaimed, and once the churn stops everything
//     unreachable is collected.
//
//     go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"dgc"
)

func main() {
	cfg := dgc.Config{CallTimeoutTicks: 100}
	c := dgc.NewCluster(42, cfg)
	refs, err := c.Materialize(dgc.LiveRing(3, 2), cfg)
	if err != nil {
		log.Fatal(err)
	}
	head := refs[dgc.RingHead()]

	// Every process gets a rooted driver holding the ring head.
	for _, n := range c.Nodes() {
		var driver dgc.ObjID
		n.With(func(m dgc.Mutator) {
			driver = m.Alloc(nil)
			if err := m.Root(driver); err != nil {
				log.Fatal(err)
			}
		})
		if err := c.Connect(n.ID(), driver, head.Node, head.Obj); err != nil {
			log.Fatal(err)
		}
	}
	c.Settle()

	// GC traffic becomes unreliable. (Loss is restricted to the
	// collector's own messages: the paper's loss-tolerance claim is about
	// the DGC protocol, not the application's RPCs.)
	c.Net.SetFaults(dgc.Faults{LossRate: 0.2, DupRate: 0.1, ReorderRate: 0.2, Affects: dgc.GCTraffic()})

	fmt.Printf("start: %d live objects; faults: 20%% loss, 10%% dup, 20%% reorder on GC traffic\n",
		c.TotalObjects())

	invocations := 0
	for round := 0; round < 20; round++ {
		for _, n := range c.Nodes() {
			if n.ID() == head.Node {
				continue
			}
			// Allocate a child at the ring head, then unlink it again:
			// the child becomes distributed garbage that the collectors
			// must chase while the mutator keeps running.
			if err := n.Invoke(head, "alloc-child", nil, func(m dgc.Mutator, r dgc.Reply) {
				if r.OK && len(r.Returns) == 1 {
					if err := m.Invoke(head, "drop", r.Returns, nil); err != nil {
						log.Fatal(err)
					}
				}
			}); err != nil {
				log.Fatal(err)
			}
			if err := n.Invoke(head, "noop", nil, nil); err != nil {
				log.Fatal(err)
			}
			invocations += 3
		}
		c.Settle()
		c.GCRound()
	}

	fmt.Printf("after 20 churn rounds and %d invocations: %d objects\n",
		invocations, c.TotalObjects())

	// Quiesce: keep running GC rounds — still under faults, so individual
	// rounds may stall on a lost message and progress resumes on the next
	// retry (the protocol's loss tolerance).
	rounds := 0
	for c.TotalObjects() > 9 && rounds < 60 {
		c.GCRound()
		rounds++
	}
	fmt.Printf("after %d quiescent rounds: %d objects (ring 6 + 3 drivers = 9 expected)\n",
		rounds, c.TotalObjects())

	var failed, swept uint64
	for _, s := range c.Stats() {
		failed += s.CallsFailed
		swept += s.ObjectsSwept
	}
	fmt.Printf("mutator calls failed: %d; objects swept over the run: %d\n", failed, swept)
	if c.TotalObjects() == 9 {
		fmt.Println("safety and completeness held under churn and faults ✔")
	}
}
