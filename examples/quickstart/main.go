// Quickstart: build the paper's Figure 3 — a garbage cycle spanning four
// processes — on a simulated cluster and watch the distributed cycle
// detector reclaim it.
//
// Reference listing alone (the acyclic distributed collector) can never
// reclaim this cycle: each process's fragment is protected by a scion from
// the previous process. The DCDA detects the cycle with one round of CDM
// messages and deletes a scion, after which the acyclic collector unravels
// the rest.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dgc"
)

func main() {
	cfg := dgc.Config{}
	c := dgc.NewCluster(1, cfg)

	refs, err := c.Materialize(dgc.Figure3(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %q: %d objects on %d processes, %d inter-process references\n",
		"figure3", c.TotalObjects(), 4, c.TotalStubs())
	fmt.Printf("the cycle: F@%s -> Q@%s -> O@%s -> D@%s -> F\n",
		refs["F"].Node, refs["Q"].Node, refs["O"].Node, refs["D"].Node)

	// Round 1: local collections reclaim only A (plain local garbage);
	// the cycle survives because scions act as roots.
	c.GCRound()
	fmt.Printf("after round 1: %d objects (only A reclaimed; cycle leaked by reference listing)\n",
		c.TotalObjects())

	// Further rounds: summaries are taken, the detector nominates the
	// quiescent, locally-unreachable scions, CDMs traverse the ring, the
	// algebra matches to empty, and the cascade reclaims everything.
	round := 1
	for c.TotalObjects() > 0 && round < 12 {
		c.GCRound()
		round++
		fmt.Printf("after round %d: %d objects, %d scions\n",
			round, c.TotalObjects(), c.TotalScions())
	}

	var found, sent uint64
	for _, s := range c.Stats() {
		found += s.Detector.CyclesFound
		sent += s.Detector.CDMsSent
	}
	fmt.Printf("\ncycle detections completed: %d (with %d CDM messages total)\n", found, sent)
	if c.TotalObjects() == 0 {
		fmt.Println("distributed cycle fully reclaimed ✔")
	}
}
