// Webgraph: the workload that motivates the paper ("cycles are frequent" in
// distributed object systems, citing the memory behaviour of the WWW as a
// persistent store).
//
// Four servers host pages; pages link to each other freely across servers
// — creating exactly the cross-server link cycles real webs have (A's page
// links B's, which links back). Publishing a page roots it at its server;
// unpublishing unroots it. When a community of mutually-linked pages is
// fully unpublished it becomes a distributed cycle of garbage that
// reference listing alone would leak forever; the DCDA reclaims it without
// stopping the site.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dgc"
)

const (
	servers        = 4
	pagesPerServer = 12
	linksPerPage   = 3
)

func main() {
	cfg := dgc.Config{}
	c := dgc.NewCluster(2026, cfg)
	names := make([]dgc.NodeID, servers)
	for i := range names {
		names[i] = dgc.NodeID(fmt.Sprintf("web%d", i+1))
		c.Add(names[i], cfg)
	}

	// Publish pages: every page is rooted (it has a URL).
	rng := rand.New(rand.NewSource(7))
	pages := make([]dgc.GlobalRef, 0, servers*pagesPerServer)
	for _, server := range names {
		n := c.Node(server)
		n.With(func(m dgc.Mutator) {
			for p := 0; p < pagesPerServer; p++ {
				obj := m.Alloc([]byte(fmt.Sprintf("<html>page %d on %s</html>", p, server)))
				if err := m.Root(obj); err != nil {
					log.Fatal(err)
				}
				pages = append(pages, m.GlobalRef(obj))
			}
		})
	}

	// Cross-link pages randomly: hyperlinks become intra- or inter-process
	// references; the cluster harness pairs stubs and scions.
	links := 0
	for _, from := range pages {
		for l := 0; l < linksPerPage; l++ {
			to := pages[rng.Intn(len(pages))]
			if to == from {
				continue
			}
			if err := c.Connect(from.Node, from.Obj, to.Node, to.Obj); err != nil {
				log.Fatal(err)
			}
			links++
		}
	}
	c.Settle()
	fmt.Printf("published %d pages on %d servers with %d links (%d cross-server)\n",
		len(pages), servers, links, c.TotalStubs())

	// Steady state: everything is published, nothing to collect.
	c.GCRound()
	fmt.Printf("steady state: %d objects alive\n", c.TotalObjects())

	// A whole community is unpublished: every page loses its URL, but the
	// community's pages still link to each other (and are linked FROM the
	// outside too, until those referers are also unpublished).
	unpublished := 0
	for _, p := range pages {
		if rng.Float64() < 0.5 {
			c.Node(p.Node).With(func(m dgc.Mutator) { m.Unroot(p.Obj) })
			unpublished++
		}
	}
	fmt.Printf("unpublished %d pages\n", unpublished)

	live := c.GlobalLive()
	rounds := 0
	for c.TotalObjects() > len(live) && rounds < 30 {
		c.GCRound()
		rounds++
	}
	fmt.Printf("after %d GC rounds: %d pages remain (%d still reachable from published pages)\n",
		rounds, c.TotalObjects(), len(live))

	if v := c.LiveViolations(live); len(v) != 0 {
		log.Fatalf("SAFETY: published content was deleted: %v", v)
	}

	// Unpublish everything: the entire web becomes garbage, much of it
	// cyclic, all of it reclaimed.
	for _, p := range pages {
		c.Node(p.Node).With(func(m dgc.Mutator) { m.Unroot(p.Obj) })
	}
	rounds = 0
	for c.TotalObjects() > 0 && rounds < 40 {
		c.GCRound()
		rounds++
	}
	var cycles, cdms uint64
	for _, s := range c.Stats() {
		cycles += s.Detector.CyclesFound
		cdms += s.Detector.CDMsSent
	}
	fmt.Printf("site shutdown: all %d pages reclaimed in %d rounds (%d cycle detections, %d CDMs) ✔\n",
		len(pages), rounds, cycles, cdms)
	if c.TotalObjects() != 0 {
		log.Fatalf("%d pages leaked", c.TotalObjects())
	}
}
