// Mutual cycles: the paper's Figure 4 — two mutually-linked distributed
// cycles over six processes — plus its Figure 1 variant where an external
// live reference pins the cycles.
//
// Demonstrates the two defining behaviours of the detector's algebra:
//
//   - converging paths (two scions lead to the same stub at P5) become
//     extra dependencies that must be resolved before any cycle is
//     declared;
//
//   - an unresolved dependency (the rooted W -> F reference) blocks
//     collection exactly until it disappears.
//
//     go run ./examples/mutualcycles
package main

import (
	"fmt"
	"log"

	"dgc"
)

func main() {
	fmt.Println("=== Figure 4: mutually-linked cycles ===")
	runFigure4()
	fmt.Println()
	fmt.Println("=== Figure 1: cycle with an external dependency ===")
	runFigure1()
}

func runFigure4() {
	cfg := dgc.Config{}
	c := dgc.NewCluster(1, cfg)
	if _, err := c.Materialize(dgc.Figure4(), cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start: %d objects across %d processes, %d scions\n",
		c.TotalObjects(), 6, c.TotalScions())

	rounds := c.CollectFully(15)
	fmt.Printf("collected in %d rounds: %d objects remain\n", rounds, c.TotalObjects())

	for id, s := range c.Stats() {
		if s.Detector.CyclesFound > 0 {
			fmt.Printf("  %s completed %d detection(s); %d scions freed\n",
				id, s.Detector.CyclesFound, s.Detector.ScionsFreed)
		}
	}
}

func runFigure1() {
	cfg := dgc.Config{}
	c := dgc.NewCluster(1, cfg)
	refs, err := c.Materialize(dgc.Figure1(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := refs["W"]
	fmt.Printf("start: %d objects; W@%s holds a rooted reference into the cycle\n",
		c.TotalObjects(), w.Node)

	c.CollectFully(10)
	fmt.Printf("with the dependency alive: %d objects remain (cycle correctly preserved)\n",
		c.TotalObjects())

	// The dependency dies.
	c.Node(w.Node).With(func(m dgc.Mutator) { m.Unroot(w.Obj) })
	rounds := c.CollectFully(15)
	fmt.Printf("after dropping W's root: collected in %d rounds, %d objects remain\n",
		rounds, c.TotalObjects())
}
