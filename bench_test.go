package dgc_test

// Benchmark harness: one benchmark (family) per table and figure of the
// paper's evaluation, plus the extended experiments of DESIGN.md. The
// mapping to the paper is:
//
//	BenchmarkTable1RMI            — Table 1 (RMI plain vs DGC-extended)
//	BenchmarkSerialization        — §4 snapshot-serialization prose
//	BenchmarkSummarize            — §3 graph summarization cost
//	BenchmarkFig1Dependency       — Figure 1 scenario
//	BenchmarkFig3CycleLength      — Figure 3 generalized over ring sizes
//	BenchmarkFig4MutualCycles     — Figure 4 scenario
//	BenchmarkFig5RaceAbort        — Figure 5 race handling
//	BenchmarkScaleDetection       — Scale-1 (DCDA vs baselines)
//	BenchmarkLossSweep            — Loss-1
//	BenchmarkAblationDeleteMode   — Abl-1
//	BenchmarkAlgebraMatch/CDMCodec— microbenchmarks of the hot paths
//	BenchmarkDetectRound          — detection rounds on a garbage ring
//	BenchmarkCDMHop               — one CDM hop: clone, derive, match, encode
//
// Absolute times are this machine's; EXPERIMENTS.md records them against
// the paper's and discusses shape agreement.

import (
	"fmt"
	"testing"

	"dgc"
	"dgc/internal/baseline"
	"dgc/internal/core"
	"dgc/internal/experiments"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/snapshot"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// ---- Table 1 ---------------------------------------------------------------

func BenchmarkTable1RMI(b *testing.B) {
	modes := []struct {
		name    string
		disable bool
	}{{"plain", true}, {"withDGC", false}}

	// In-process fabric: isolates the pure CPU cost of the DGC
	// instrumentation per call.
	for _, mode := range modes {
		b.Run("inproc/"+mode.name, func(b *testing.B) {
			w, err := experiments.NewRMIWorkload(10, mode.disable)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Loopback TCP: the paper's setting ("client and server processes
	// execute in the same machine"), overhead relative to a real remoting
	// round trip.
	for _, mode := range modes {
		b.Run("tcp/"+mode.name, func(b *testing.B) {
			w, err := experiments.NewTCPRMIWorkload(10, mode.disable)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- serialization -----------------------------------------------------------

func BenchmarkSerialization(b *testing.B) {
	const objects = 10000
	for _, codec := range []snapshot.Codec{snapshot.BinaryCodec{}, snapshot.ReflectCodec{}} {
		for _, withStubs := range []bool{false, true} {
			name := fmt.Sprintf("%s/objs=%d/stubs=%v", codec.Name(), objects, withStubs)
			b.Run(name, func(b *testing.B) {
				h := experiments.BuildSerializationHeap(objects, withStubs)
				b.ReportAllocs()
				b.ResetTimer()
				var size int
				for i := 0; i < b.N; i++ {
					data, err := codec.Encode(h)
					if err != nil {
						b.Fatal(err)
					}
					size = len(data)
				}
				b.ReportMetric(float64(size), "bytes/snapshot")
			})
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	// Summarization cost over the stress graph of
	// experiments.BuildSummarizeHeap: a deep spine plus random edges, with
	// the scion count swept so the per-scion component of the summarizer's
	// complexity is visible. Calls snapshot.Summarize directly (the node
	// layer's unchanged-heap cache would short-circuit repeat calls).
	for _, objects := range []int{1000, 10000, 100000} {
		for _, scions := range []int{4, 64, 512} {
			b.Run(fmt.Sprintf("objs=%d/scions=%d", objects, scions), func(b *testing.B) {
				h, tb := experiments.BuildSummarizeHeap(objects, scions)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sum := snapshot.Summarize(h, tb, uint64(i+1))
					if len(sum.Scions) != tb.NumScions() {
						b.Fatalf("summary has %d scions, want %d", len(sum.Scions), tb.NumScions())
					}
				}
			})
		}
	}
}

func BenchmarkGCRound(b *testing.B) {
	// One full collection round (LGC, summarize, detect on every node) on a
	// live multi-node ring with per-round garbage churn, so every phase does
	// real work each iteration. The cluster's worker pool parallelizes the
	// node-independent phases.
	for _, procs := range []int{8, 32} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			cfg := node.Config{}
			c := dgc.NewCluster(1, cfg)
			if _, err := c.Materialize(workload.LiveRing(procs, 2), cfg); err != nil {
				b.Fatal(err)
			}
			// Bulk out each node's heap so per-node phase work dominates
			// scheduling overhead.
			for _, n := range c.Nodes() {
				n.With(func(m dgc.Mutator) {
					var prev dgc.ObjID
					for i := 0; i < 2000; i++ {
						o := m.Alloc(nil)
						if i == 0 {
							if err := m.Root(o); err != nil {
								b.Fatal(err)
							}
						} else if err := m.Link(prev, o); err != nil {
							b.Fatal(err)
						}
						prev = o
					}
				})
			}
			c.GCRound() // warm-up: tables and summaries exist
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Churn: fresh garbage on every node invalidates summaries
				// and gives the LGC something to sweep.
				for _, n := range c.Nodes() {
					n.With(func(m dgc.Mutator) {
						prev := m.Alloc(nil)
						for j := 0; j < 50; j++ {
							o := m.Alloc(nil)
							if err := m.Link(prev, o); err != nil {
								b.Fatal(err)
							}
							prev = o
						}
					})
				}
				c.GCRound()
			}
		})
	}
}

// ---- figures -----------------------------------------------------------------

// collectBench measures full reclamation of a topology (materialize + GC
// rounds to empty) per iteration.
func collectBench(b *testing.B, topo func() *dgc.Topology, maxRounds int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dgc.Config{}
		c := dgc.NewCluster(1, cfg)
		if _, err := c.Materialize(topo(), cfg); err != nil {
			b.Fatal(err)
		}
		rounds := 0
		for c.TotalObjects() > 0 && rounds < maxRounds {
			c.GCRound()
			rounds++
		}
		if c.TotalObjects() != 0 {
			b.Fatalf("not collected in %d rounds", maxRounds)
		}
	}
}

func BenchmarkFig3SimpleCycle(b *testing.B) {
	collectBench(b, dgc.Figure3, 15)
}

func BenchmarkFig4MutualCycles(b *testing.B) {
	collectBench(b, dgc.Figure4, 15)
}

func BenchmarkFig1Dependency(b *testing.B) {
	// Full Figure 1 lifecycle: blocked while the dependency lives, then
	// collected after it dies.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dgc.Config{}
		c := dgc.NewCluster(1, cfg)
		refs, err := c.Materialize(dgc.Figure1(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			c.GCRound()
		}
		if c.TotalObjects() != 14 {
			b.Fatalf("dependency did not block: %d objects", c.TotalObjects())
		}
		w := refs["W"]
		c.Node(w.Node).With(func(m dgc.Mutator) { m.Unroot(w.Obj) })
		rounds := 0
		for c.TotalObjects() > 0 && rounds < 15 {
			c.GCRound()
			rounds++
		}
		if c.TotalObjects() != 0 {
			b.Fatal("not collected after dependency death")
		}
	}
}

func BenchmarkFig3CycleLength(b *testing.B) {
	for _, procs := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := dgc.Config{}
				c := dgc.NewCluster(1, cfg)
				if _, err := c.Materialize(dgc.Ring(procs, 2), cfg); err != nil {
					b.Fatal(err)
				}
				rounds := 0
				for c.TotalObjects() > 0 && rounds < procs*3+10 {
					c.GCRound()
					rounds++
				}
				if c.TotalObjects() != 0 {
					b.Fatal("ring not collected")
				}
				if i == 0 {
					var cdms uint64
					for _, s := range c.Stats() {
						cdms += s.Detector.CDMsSent
					}
					b.ReportMetric(float64(cdms), "CDMs/collection")
					b.ReportMetric(float64(rounds), "rounds/collection")
				}
			}
		})
	}
}

func BenchmarkFig5RaceAbort(b *testing.B) {
	// One full Figure 5 race (detection + root migration + abort) per
	// iteration; the experiment asserts zero false positives as it runs.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RaceAbortRate([]int{1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].FalsePositives != 0 || rows[0].CyclesFound != 0 {
			b.Fatalf("race produced false positive: %+v", rows[0])
		}
	}
}

// ---- comparisons & extensions ---------------------------------------------------

func BenchmarkScaleDetection(b *testing.B) {
	topo := func() *workload.Topology { return workload.Ring(8, 2) }
	b.Run("dcda", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := node.Config{}
			c := dgc.NewCluster(1, cfg)
			if _, err := c.Materialize(topo(), cfg); err != nil {
				b.Fatal(err)
			}
			rounds := 0
			for c.TotalObjects() > 0 && rounds < 40 {
				c.GCRound()
				rounds++
			}
			if c.TotalObjects() != 0 {
				b.Fatal("not collected")
			}
		}
	})
	b.Run("hughes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := baseline.Build(topo())
			if err != nil {
				b.Fatal(err)
			}
			h := baseline.NewHughes(w)
			rounds := 0
			for w.TotalObjects() > 0 && rounds < int(h.Lag)*3+50 {
				h.Round()
				rounds++
			}
			if w.TotalObjects() != 0 {
				b.Fatal("not collected")
			}
		}
	})
	b.Run("backtrace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := baseline.Build(topo())
			if err != nil {
				b.Fatal(err)
			}
			bt := baseline.NewBacktracer(w)
			rounds := 0
			for w.TotalObjects() > 0 && rounds < 40 {
				if err := bt.Round(); err != nil {
					b.Fatal(err)
				}
				rounds++
			}
			if w.TotalObjects() != 0 {
				b.Fatal("not collected")
			}
		}
	})
}

func BenchmarkLossSweep(b *testing.B) {
	for _, rate := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("loss=%.0f%%", rate*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.LossSweep([]float64{rate}, 3, 400)
				if err != nil {
					b.Fatal(err)
				}
				if !rows[0].Collected {
					b.Fatal("not collected under loss")
				}
				if i == 0 {
					b.ReportMetric(float64(rows[0].Rounds), "rounds/collection")
				}
			}
		})
	}
}

func BenchmarkAblationDeleteMode(b *testing.B) {
	for _, mode := range []string{"cascade", "broadcast"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationDeleteMode([]int{8})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Mode == mode && i == 0 {
						b.ReportMetric(float64(r.RoundsToEmpty), "rounds/collection")
					}
				}
			}
		})
	}
}

// ---- microbenchmarks ---------------------------------------------------------

func BenchmarkAlgebraMatch(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("refs=%d", n), func(b *testing.B) {
			alg := core.NewAlg()
			for i := 0; i < n; i++ {
				r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
				alg.AddSource(r, uint64(i))
				if i%2 == 0 {
					alg.AddTarget(r, uint64(i))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := alg.Match()
				if m.Abort {
					b.Fatal("unexpected abort")
				}
			}
		})
	}
}

func BenchmarkCDMCodec(b *testing.B) {
	alg := core.NewAlg()
	for i := 0; i < 32; i++ {
		r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
		alg.AddSource(r, uint64(i))
		alg.AddTarget(r, uint64(i))
	}
	msg := wire.NewCDM(core.DetectionID{Origin: "P1", Seq: 9},
		ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}}, alg, 7)
	data := wire.Encode(msg)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wire.Encode(msg)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(len(data)), "bytes/CDM")
}

func BenchmarkDetectRound(b *testing.B) {
	// The detection rounds that drain a garbage ring: the CDM fan-out and
	// accumulator merging dominate, exercising the interned algebra end to
	// end (dgc-bench -exp detect reports the same path against the recorded
	// map-algebra baseline).
	for _, procs := range []int{8, 32} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.DetectRoundScale([]int{procs}, 1)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(rows[0].CDMsSent), "CDMs/collection")
				}
			}
		})
	}
}

func BenchmarkCDMHop(b *testing.B) {
	// One CDM hop at a receiving process: clone the accumulated algebra,
	// derive, check for a match, and build + frame the outgoing message —
	// the per-message unit of work detection latency scales with.
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			alg := core.NewAlg()
			for i := 0; i < n; i++ {
				r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
				alg.AddSource(r, uint64(i))
				if i%2 == 0 {
					alg.AddTarget(r, uint64(i))
				}
			}
			det := core.DetectionID{Origin: "P1", Seq: 1}
			along := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P1", Obj: 1}}
			newSrc := ids.RefID{Src: "P8", Dst: ids.GlobalRef{Node: "P9", Obj: 7}}
			frame := make([]byte, 0, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				derived := alg.Clone()
				derived.AddTarget(along, 3)
				derived.AddSource(newSrc, 4)
				if _, abort := derived.MatchStatus(); abort {
					b.Fatal("unexpected abort")
				}
				msg := wire.NewCDMFromAlg(det, along, derived, 3, core.TraceIDFor(det))
				frame = wire.AppendEncode(frame[:0], msg)
			}
		})
	}
}

func BenchmarkCDMHopInstrumented(b *testing.B) {
	// BenchmarkCDMHop plus the observability work the node layer performs per
	// handled CDM: the counter increments, the hop histogram observation and
	// the inflight-detection map upkeep. The acceptance bar for the metrics
	// layer is this staying within 5% of the uninstrumented hop.
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			alg := core.NewAlg()
			for i := 0; i < n; i++ {
				r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
				alg.AddSource(r, uint64(i))
				if i%2 == 0 {
					alg.AddTarget(r, uint64(i))
				}
			}
			det := core.DetectionID{Origin: "P1", Seq: 1}
			along := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P1", Obj: 1}}
			newSrc := ids.RefID{Src: "P8", Dst: ids.GlobalRef{Node: "P9", Obj: 7}}
			frame := make([]byte, 0, 4096)
			met := dgc.NewNodeMetrics(dgc.NewMetricsRegistry())
			inflight := map[core.DetectionID]struct{}{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met.CDMsHandled.Inc()
				met.CDMHops.Observe(3)
				if _, ok := inflight[det]; !ok {
					inflight[det] = struct{}{}
				}
				derived := alg.Clone()
				derived.AddTarget(along, 3)
				derived.AddSource(newSrc, 4)
				if _, abort := derived.MatchStatus(); abort {
					b.Fatal("unexpected abort")
				}
				msg := wire.NewCDMFromAlg(det, along, derived, 3, core.TraceIDFor(det))
				frame = wire.AppendEncode(frame[:0], msg)
				met.CDMsSent.Inc()
			}
		})
	}
}

func BenchmarkCDMHopJournaled(b *testing.B) {
	// BenchmarkCDMHopInstrumented plus the event-journal writes the node
	// layer performs per handled CDM: the cdm-handled emission and the
	// cdm-sent emission for the forwarded message, against a journal at the
	// daemons' default capacity with no subscribers (the steady state — the
	// fan-out loop is empty and the cost is seq++, the ring store, and the
	// Sprintf of the detail line). The bar matches PR 4's instrumentation:
	// within noise of the uninstrumented hop.
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			alg := core.NewAlg()
			for i := 0; i < n; i++ {
				r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
				alg.AddSource(r, uint64(i))
				if i%2 == 0 {
					alg.AddTarget(r, uint64(i))
				}
			}
			det := core.DetectionID{Origin: "P1", Seq: 1}
			along := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P1", Obj: 1}}
			newSrc := ids.RefID{Src: "P8", Dst: ids.GlobalRef{Node: "P9", Obj: 7}}
			frame := make([]byte, 0, 4096)
			met := dgc.NewNodeMetrics(dgc.NewMetricsRegistry())
			inflight := map[core.DetectionID]struct{}{}
			journal := dgc.NewTraceLog(8192)
			tid := core.TraceIDFor(det)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met.CDMsHandled.Inc()
				met.CDMHops.Observe(3)
				if _, ok := inflight[det]; !ok {
					inflight[det] = struct{}{}
				}
				derived := alg.Clone()
				derived.AddTarget(along, 3)
				derived.AddSource(newSrc, 4)
				if _, abort := derived.MatchStatus(); abort {
					b.Fatal("unexpected abort")
				}
				journal.EmitTraced("P1", dgc.TraceKindCDMHandled, tid,
					"det=%s/%d along=%s outcome=forwarded", det.Origin, det.Seq, along)
				msg := wire.NewCDMFromAlg(det, along, derived, 3, tid)
				frame = wire.AppendEncode(frame[:0], msg)
				journal.EmitTraced("P1", dgc.TraceKindCDMSent, tid,
					"det=%s/%d to=%s along=%s hops=%d", det.Origin, det.Seq, along.Dst.Node, along, 3)
				met.CDMsSent.Inc()
			}
		})
	}
}

func BenchmarkLGC(b *testing.B) {
	// Local collection over a 10k-object heap with distributed edges.
	cfg := dgc.Config{}
	c := dgc.NewCluster(1, cfg, "P1", "P2")
	n := c.Node("P1")
	n.With(func(m dgc.Mutator) {
		var prev dgc.ObjID
		for i := 0; i < 10000; i++ {
			o := m.Alloc(nil)
			if i == 0 {
				if err := m.Root(o); err != nil {
					b.Fatal(err)
				}
			} else if err := m.Link(prev, o); err != nil {
				b.Fatal(err)
			}
			prev = o
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RunLGC()
	}
}
