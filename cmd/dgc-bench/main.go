// dgc-bench regenerates the paper's evaluation tables and the extended
// experiments from DESIGN.md, printing the same rows the paper reports.
//
// Usage:
//
//	dgc-bench [-exp all|table1|serialization|scale|compare|quiescent|loss|ablation|race] [-quick]
//
// Absolute numbers differ from the paper (simulated substrate vs the
// authors' Pentium 4 Rotor testbed); the SHAPES are the reproduction
// target: DGC overhead per call within a modest band, naive-vs-binary
// serialization two orders of magnitude apart, stubs adding sub-linear
// cost, detection cost linear in cycle length, Hughes paying continuously,
// back-tracing state growing with cycles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"dgc/internal/experiments"
	"dgc/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	quick := flag.Bool("quick", false, "smaller parameters for a fast run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	run := func(name string, fn func(quick bool) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := fn(*quick); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", runTable1)
	run("serialization", runSerialization)
	run("scale", runScale)
	run("compare", runCompare)
	run("quiescent", runQuiescent)
	run("loss", runLoss)
	run("ablation", runAblation)
	run("race", runRace)
	run("lease", runLease)
	run("disruption", runDisruption)
	run("summarize", runSummarize)
	run("gcround", runGCRound)
	run("detect", runDetect)
	run("wire", runWire)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}

// writeJSON lands a result table in a BENCH_*.json file next to the working
// directory, so runs leave a machine-readable record.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// runTable1 reproduces Table 1: RMI in original Rotor and DGC-extended.
func runTable1(quick bool) error {
	counts := []int{10, 100, 500, 1000}
	if quick {
		counts = []int{10, 100}
	}
	rows, err := experiments.Table1(counts, 10)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "# RMI calls\tplain\twith DGC\tvariation")
	fmt.Fprintln(w, "(paper: 10 calls 1933ms/2072ms +7.19%; 100 12417/14731 +18.64%; 500 58754/70931 +20.73%; 1000 118890/140191 +17.92%)\t\t\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%+.2f%%\n",
			r.Calls, r.Plain.Round(time.Microsecond), r.WithDGC.Round(time.Microsecond), r.VariationPct)
	}
	return w.Flush()
}

// runSerialization reproduces the §4 snapshot-serialization measurements.
func runSerialization(quick bool) error {
	objects, reps := 10000, 3
	if quick {
		objects, reps = 2000, 1
	}
	rows, err := experiments.Serialization(objects, reps)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "codec\tobjects\tstubs\tduration\tbytes")
	fmt.Fprintln(w, "(paper: Rotor 10000 objs 26037ms, +10000 stubs 45125ms (+73%); production .NET ~100x faster, 250-350ms)\t\t\t\t")
	for _, r := range rows {
		stubs := "-"
		if r.WithStubs {
			stubs = fmt.Sprintf("%d", r.Objects)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%d\n", r.Codec, r.Objects, stubs, r.Duration.Round(time.Microsecond), r.Bytes)
	}
	return w.Flush()
}

// runScale sweeps detection cost against cycle length (Figure 3 generalized).
func runScale(quick bool) error {
	sizes := []int{2, 4, 8, 16, 32, 64}
	if quick {
		sizes = []int{2, 4, 8}
	}
	rows, err := experiments.DetectionScale(sizes, 2)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "processes\tCDMs sent\tprotocol bytes\trounds to empty\twall")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\n", r.Procs, r.CDMsSent, r.CDMBytes, r.RoundsToEmpty, r.Wall.Round(time.Microsecond))
	}
	return w.Flush()
}

// runCompare races the DCDA against the Hughes and back-tracing baselines.
func runCompare(quick bool) error {
	topos := []*workload.Topology{workload.Figure3(), workload.Figure4(), workload.Ring(8, 2)}
	if quick {
		topos = topos[:1]
	}
	w := tw()
	fmt.Fprintln(w, "topology\tcollector\tprotocol messages\trounds\tcollected")
	for _, topo := range topos {
		rows, err := experiments.CompareCollectors(topo, 60)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\n", r.Topology, r.Collector, r.Messages, r.Rounds, r.Collected)
		}
	}
	return w.Flush()
}

// runQuiescent measures the permanent cost on a fully live world.
func runQuiescent(quick bool) error {
	rounds := 20
	if quick {
		rounds = 8
	}
	rows, err := experiments.QuiescentCost(workload.LiveRing(6, 3), rounds)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "collector\tmessages over rounds\tper round")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\n", r.Collector, r.Messages, float64(r.Messages)/float64(r.Rounds))
	}
	return w.Flush()
}

// runLoss sweeps GC-message loss rates.
func runLoss(quick bool) error {
	rates := []float64{0, 0.1, 0.3, 0.5}
	procs, maxRounds := 4, 400
	if quick {
		rates = []float64{0, 0.3}
		procs, maxRounds = 3, 200
	}
	rows, err := experiments.LossSweep(rates, procs, maxRounds)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "GC loss rate\trounds to reclaim\tcollected")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f%%\t%d\t%v\n", r.LossRate*100, r.Rounds, r.Collected)
	}
	return w.Flush()
}

// runAblation compares cycle-found delete modes.
func runAblation(quick bool) error {
	sizes := []int{4, 8, 16}
	if quick {
		sizes = []int{4, 8}
	}
	rows, err := experiments.AblationDeleteMode(sizes)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "processes\tmode\trounds to empty")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%d\n", r.Procs, r.Mode, r.RoundsToEmpty)
	}
	return w.Flush()
}

// runLease demonstrates why the paper's collector is "a safe DGC (not a
// lease-based one)": leased reference listing reclaims LIVE objects when a
// holder goes quiet past its lease.
func runLease(quick bool) error {
	silences := []uint64{1, 2, 4, 8, 16}
	if quick {
		silences = []uint64{1, 8}
	}
	rows, err := experiments.LeaseAblation(silences, 4)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "silence rounds\tlease=4: live object lost\tref-listing: live object lost\trenewal msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%d\n", r.SilenceRounds, r.LeaseReclaimed, r.PlainReclaimed, r.LeaseRenewalMsg)
	}
	return w.Flush()
}

// runDisruption measures snapshot pauses per codec against invocation
// latency (§4's "phases critical to applications performance").
func runDisruption(quick bool) error {
	objects, invokes := 10000, 100
	if quick {
		objects, invokes = 3000, 30
	}
	rows, err := experiments.Disruption(objects, invokes)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "codec\theap objects\tsnapshot pause\tmean invoke latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\n", r.Codec, r.HeapObjects,
			r.SnapshotPause.Round(time.Microsecond), r.InvokeLatency.Round(time.Microsecond))
	}
	return w.Flush()
}

// runSummarize sweeps graph summarization over the heap-size × scion
// matrix and lands the numbers in BENCH_summarize.json.
func runSummarize(quick bool) error {
	objects := []int{1000, 10000, 100000}
	scions := []int{4, 64, 512}
	reps := 3
	if quick {
		objects = []int{1000, 10000}
		reps = 1
	}
	rows, err := experiments.SummarizeScale(objects, scions, reps)
	if err != nil {
		return err
	}
	baseline := experiments.SummarizeBaseline()
	before := make(map[[2]int]time.Duration, len(baseline))
	for _, b := range baseline {
		before[[2]int{b.Objects, b.Scions}] = b.Duration
	}
	w := tw()
	fmt.Fprintln(w, "objects\tscions\tper-scion BFS (recorded)\tsingle-pass\tspeedup")
	var speedup10kx512 float64
	for _, r := range rows {
		b := before[[2]int{r.Objects, r.Scions}]
		sp := "-"
		if b > 0 && r.Duration > 0 {
			ratio := float64(b) / float64(r.Duration)
			sp = fmt.Sprintf("%.1fx", ratio)
			if r.Objects == 10000 && r.Scions == 512 {
				speedup10kx512 = ratio
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%s\n",
			r.Objects, r.Scions, b.Round(time.Microsecond), r.Duration.Round(time.Microsecond), sp)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeJSON("BENCH_summarize.json", map[string]any{
		"benchmark":            "graph summarization, BuildSummarizeHeap matrix (best of reps)",
		"cpu":                  "Intel Xeon @ 2.10GHz",
		"num_cpu":              runtime.NumCPU(),
		"gomaxprocs":           runtime.GOMAXPROCS(0),
		"before_per_scion_bfs": baseline,
		"after_single_pass":    rows,
		"speedup_10000x512":    speedup10kx512,
	})
}

// runGCRound measures one settled cluster GC round across the procs ×
// workers matrix, landing the numbers in BENCH_gcround.json.
func runGCRound(quick bool) error {
	procs := []int{8, 32}
	rounds := 5
	if quick {
		procs = []int{8}
		rounds = 2
	}
	warnNumCPU("gcround")
	rows, err := experiments.GCRoundScale(procs, rounds)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "processes\tworkers\tGC round")
	for _, r := range rows {
		workers := fmt.Sprintf("%d", r.Workers)
		if r.Workers == 0 {
			workers = fmt.Sprintf("NumCPU(%d)", runtime.NumCPU())
		}
		fmt.Fprintf(w, "%d\t%s\t%v\n", r.Procs, workers, r.Round.Round(time.Microsecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeJSON("BENCH_gcround.json", map[string]any{
		"benchmark":  "one settled cluster GC round, live ring + 2000-object chains + churn (best of rounds), procs x workers matrix",
		"cpu":        "Intel Xeon @ 2.10GHz",
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"rows":       rows,
	})
}

// warnNumCPU flags scaling measurements recorded on a machine too narrow to
// show parallel speedup: on fewer than 4 cores the worker-pool cells of the
// matrix time-slice one another and the recorded curve is flat or worse.
// The numbers are still recorded (honestly, with num_cpu alongside) — they
// are just not evidence about scaling.
func warnNumCPU(exp string) {
	if n := runtime.NumCPU(); n < 4 {
		fmt.Printf("WARNING: %s: runtime.NumCPU()=%d (<4), GOMAXPROCS=%d; worker-pool cells measure scheduling overhead, not parallel speedup. Re-record on a >=8-core machine for the scaling claim.\n", exp, n, runtime.GOMAXPROCS(0))
	}
}

// runDetect measures the detection-round and CDM-hop hot paths against the
// recorded pre-interning baseline, landing the numbers in BENCH_detect.json.
func runDetect(quick bool) error {
	procs := []int{8, 32}
	reps, hopIters := 60, 20000
	cands := []int{16, 64, 256}
	if quick {
		procs = []int{8}
		reps, hopIters = 3, 1000
		cands = []int{16, 64}
	}
	warnNumCPU("detect")
	rows, err := experiments.DetectRoundScale(procs, reps)
	if err != nil {
		return err
	}
	baseline := experiments.DetectBaseline()
	before := make(map[int]experiments.DetectRow, len(baseline))
	for _, b := range baseline {
		before[b.Procs] = b
	}
	w := tw()
	fmt.Fprintln(w, "processes\tmap algebra (recorded)\tinterned algebra\tspeedup\tallocs before\tallocs after")
	var speedup32 float64
	for _, r := range rows {
		b := before[r.Procs]
		sp := "-"
		if b.Wall > 0 && r.Wall > 0 {
			ratio := float64(b.Wall) / float64(r.Wall)
			sp = fmt.Sprintf("%.1fx", ratio)
			if r.Procs == 32 {
				speedup32 = ratio
			}
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%s\t%d\t%d\n",
			r.Procs, b.Wall.Round(time.Microsecond), r.Wall.Round(time.Microsecond), sp, b.Allocs, r.Allocs)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	hops, err := experiments.CDMHopScale([]int{16, 64, 256}, hopIters)
	if err != nil {
		return err
	}
	hopBase := experiments.CDMHopBaseline()
	hb := make(map[int]experiments.HopRow, len(hopBase))
	for _, b := range hopBase {
		hb[b.Entries] = b
	}
	w = tw()
	fmt.Fprintln(w, "algebra entries\tper hop before\tper hop after\tspeedup\tallocs/hop before\tallocs/hop after")
	for _, r := range hops {
		b := hb[r.Entries]
		sp := "-"
		if b.PerHop > 0 && r.PerHop > 0 {
			sp = fmt.Sprintf("%.1fx", float64(b.PerHop)/float64(r.PerHop))
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%s\t%.1f\t%.1f\n",
			r.Entries, b.PerHop.Round(time.Nanosecond), r.PerHop.Round(time.Nanosecond), sp, b.AllocsPer, r.AllocsPer)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	sweep, err := experiments.DetectBatchSweep(cands, 6, 200)
	if err != nil {
		return err
	}
	w = tw()
	fmt.Fprintln(w, "workload\tcandidates\tmode\tCDM msgs\tbatch CDMs\tsections\tderived\trounds\tcollected")
	for _, r := range sweep {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Workload, r.Candidates, r.Mode, r.CDMMsgs, r.BatchCDMs, r.Sections, r.Derived, r.Rounds, r.Collected)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeJSON("BENCH_detect.json", map[string]any{
		"benchmark":            "DCDA detection rounds on a garbage ring (best of reps) + single CDM hop derivation + batched-detection candidate sweep",
		"cpu":                  "Intel Xeon @ 2.10GHz",
		"num_cpu":              runtime.NumCPU(),
		"gomaxprocs":           runtime.GOMAXPROCS(0),
		"before_map_algebra":   baseline,
		"after_interned":       rows,
		"before_hop":           hopBase,
		"after_hop":            hops,
		"speedup_32procs":      speedup32,
		"hop_alloc_reductions": hopAllocReductions(hopBase, hops),
		"candidates":           sweep,
	})
}

func hopAllocReductions(before, after []experiments.HopRow) map[string]float64 {
	ba := make(map[int]float64, len(before))
	for _, b := range before {
		ba[b.Entries] = b.AllocsPer
	}
	out := make(map[string]float64, len(after))
	for _, r := range after {
		if r.AllocsPer > 0 {
			out[fmt.Sprintf("%d", r.Entries)] = ba[r.Entries] / r.AllocsPer
		}
	}
	return out
}

// runWire measures the pooled CDM codec against the recorded per-message
// allocating baseline, landing the numbers in BENCH_wire.json.
func runWire(quick bool) error {
	iters := 50000
	if quick {
		iters = 2000
	}
	rows, err := experiments.WireCodecScale([]int{16, 64, 256}, iters)
	if err != nil {
		return err
	}
	baseline := experiments.WireBaseline()
	before := make(map[int]experiments.WireRow, len(baseline))
	for _, b := range baseline {
		before[b.Entries] = b
	}
	w := tw()
	fmt.Fprintln(w, "entries\tencode before\tencode after\tdecode before\tdecode after\tdec allocs before\tdec allocs after")
	for _, r := range rows {
		b := before[r.Entries]
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%.0f\t%.1f\n",
			r.Entries, b.EncodeNs, r.EncodeNs, b.DecodeNs, r.DecodeNs, b.DecAllocs, r.DecAllocs)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeJSON("BENCH_wire.json", map[string]any{
		"benchmark":       "CDM wire codec, pooled encode buffers + interned decode NodeIDs",
		"cpu":             "Intel Xeon @ 2.10GHz",
		"num_cpu":         runtime.NumCPU(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"before":          baseline,
		"after":           rows,
		"iters_per_point": iters,
	})
}

// runRace quantifies Figure 5: mutator races abort detections, never
// producing false positives.
func runRace(quick bool) error {
	mus := []int{0, 1, 2}
	rounds := 8
	if quick {
		mus = []int{0, 1}
		rounds = 5
	}
	rows, err := experiments.RaceAbortRate(mus, rounds)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "migrations/round\tdetections\taborted\tcycles found\tfalse positives")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n", r.MigrationsPerRound, r.Detections, r.Aborted, r.CyclesFound, r.FalsePositives)
	}
	return w.Flush()
}
