// dgc-node runs one process of the distributed system as a TCP daemon: an
// object heap with its local collector, reference-listing acyclic DGC and
// distributed cycle detector, driven by the wall-clock LiveRuntime (a
// mailbox goroutine with periodic daemon tickers — no manual tick loop).
//
// Usage:
//
//	dgc-node -id P1 -listen :7001 -peers P2=host2:7002,P3=host3:7003
//	         [-tick 250ms] [-lgc-every 2] [-snapshot-every 4] [-detect-every 4]
//	         [-snapshot-dir DIR] [-codec binary|reflect] [-seed-objects N]
//	         [-state-file FILE] [-metrics-addr :9090]
//
// With -metrics-addr the daemon serves its collector and transport metrics
// as Prometheus text at /metrics and a structural JSON diagnostic (tables,
// inflight detections with causal trace ids, mailbox stats) at /debug/dgc.
//
// The -*-every flags are multiples of the tick period (e.g. -tick 250ms
// -lgc-every 2 runs the local collector every 500ms). Start one dgc-node
// per machine (or per port for local experiments); the examples/tcpcluster
// program shows the same topology driven from a single process. The daemon
// prints a stats line every -stats-every ticks. On SIGINT/SIGTERM it
// optionally persists collector state to -state-file, from which a restart
// resumes (heap, stub/scion tables with invocation counters, sequence
// numbers).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dgc"
)

func main() {
	var (
		id            = flag.String("id", "", "node identifier (required)")
		listen        = flag.String("listen", ":0", "listen address")
		peersFlag     = flag.String("peers", "", "comma-separated name=addr peer list")
		tick          = flag.Duration("tick", 250*time.Millisecond, "tick period")
		lgcEvery      = flag.Uint64("lgc-every", 2, "run the local GC every N ticks")
		snapEvery     = flag.Uint64("snapshot-every", 4, "summarize every N ticks")
		detectEvery   = flag.Uint64("detect-every", 4, "run cycle detection every N ticks")
		candidateAge  = flag.Uint64("candidate-age", 4, "scion quiescence ticks before candidacy")
		snapshotDir   = flag.String("snapshot-dir", "", "write serialized snapshots here")
		codecName     = flag.String("codec", "", "snapshot codec: binary or reflect")
		seedObjects   = flag.Int("seed-objects", 0, "allocate N rooted demo objects at startup")
		statsEvery    = flag.Int("stats-every", 10, "print stats every N ticks (0 = never)")
		broadcastDel  = flag.Bool("broadcast-delete", false, "broadcast scion deletion on cycle found")
		batchDetect   = flag.Bool("batch-detect", false, "batch multi-candidate detection traffic into BatchCDMs")
		aggDetect     = flag.Bool("aggregate-detect", false, "hierarchical aggregation: partial matches return to the detection origin (implies -batch-detect)")
		callTimeoutTk = flag.Uint64("call-timeout", 40, "RPC timeout in ticks")
		stateFile     = flag.String("state-file", "", "persist collector state here: loaded at startup if present, saved on shutdown")
		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus /metrics and JSON /debug/dgc on this address")
	)
	flag.Parse()
	if *id == "" {
		log.Fatal("dgc-node: -id is required")
	}

	peers := map[dgc.NodeID]string{}
	if *peersFlag != "" {
		for _, kv := range strings.Split(*peersFlag, ",") {
			name, addr, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("dgc-node: malformed peer %q (want name=addr)", kv)
			}
			peers[dgc.NodeID(name)] = addr
		}
	}

	ep, err := dgc.ListenTCP(dgc.NodeID(*id), *listen, peers)
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	// One metric set carries this node's collector and transport series; the
	// registration is harmless when -metrics-addr is unset (nothing reads it).
	metrics := dgc.NewMetricsSet()
	ep.SetMetrics(dgc.NewTransportMetrics(metrics.Node(*id)))

	cfg := dgc.Config{
		CandidateMinAge:  *candidateAge,
		CallTimeoutTicks: *callTimeoutTk,
		SnapshotDir:      *snapshotDir,
		Metrics:          metrics,
	}
	cfg.Detector.BroadcastDelete = *broadcastDel
	cfg.BatchDetection = *batchDetect || *aggDetect
	cfg.AggregateDetection = *aggDetect
	switch *codecName {
	case "":
	case "binary":
		cfg.Codec = dgc.BinaryCodec{}
	case "reflect":
		cfg.Codec = dgc.ReflectCodec{}
	default:
		log.Fatalf("dgc-node: unknown codec %q", *codecName)
	}
	if cfg.SnapshotDir != "" && cfg.Codec == nil {
		cfg.Codec = dgc.BinaryCodec{}
	}

	// Daemon intervals are tick multiples; the runtime schedules them on
	// wall-clock tickers.
	rcfg := dgc.RuntimeConfig{
		Tick:             *tick,
		LGCInterval:      time.Duration(*lgcEvery) * *tick,
		SnapshotInterval: time.Duration(*snapEvery) * *tick,
		DetectInterval:   time.Duration(*detectEvery) * *tick,
	}

	var rt *dgc.LiveRuntime
	if *stateFile != "" {
		if data, err := os.ReadFile(*stateFile); err == nil {
			rt, err = dgc.RestoreLiveRuntime(ep, cfg, rcfg, data)
			if err != nil {
				log.Fatalf("dgc-node: restore %s: %v", *stateFile, err)
			}
			fmt.Printf("restored state from %s (%d objects)\n", *stateFile, rt.NumObjects())
		} else if !os.IsNotExist(err) {
			log.Fatalf("dgc-node: read %s: %v", *stateFile, err)
		}
	}
	if rt == nil {
		rt = dgc.NewLiveRuntime(dgc.NodeID(*id), ep, cfg, rcfg)
	}
	fmt.Printf("dgc-node %s listening on %s (%d peers)\n", *id, ep.Addr(), len(peers))

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("dgc-node: metrics listen %s: %v", *metricsAddr, err)
		}
		defer ln.Close()
		handler := dgc.MetricsHandler(metrics, func() any { return rt.DebugSnapshot() })
		go func() { _ = http.Serve(ln, handler) }()
		fmt.Printf("metrics on http://%s/metrics (diagnostics at /debug/dgc)\n", ln.Addr())
	}

	if *seedObjects > 0 {
		if err := rt.With(func(m dgc.Mutator) {
			for i := 0; i < *seedObjects; i++ {
				obj := m.Alloc(nil)
				if err := m.Root(obj); err != nil {
					log.Fatal(err)
				}
			}
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeded %d rooted objects\n", *seedObjects)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// The runtime drives itself; this loop only reports.
	var statsC <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(time.Duration(*statsEvery) * *tick)
		defer t.Stop()
		statsC = t.C
	}
	for {
		select {
		case <-statsC:
			s := rt.Stats()
			fmt.Printf("[%s t=%d] objects=%d scions=%d stubs=%d swept=%d detections=%d cycles=%d aborted=%d\n",
				*id, s.Clock, rt.NumObjects(), rt.NumScions(), rt.NumStubs(),
				s.ObjectsSwept, s.Detector.Started, s.Detector.CyclesFound, s.Detector.Aborted)
		case <-sig:
			s := rt.Stats()
			objects := rt.NumObjects()
			if *stateFile != "" {
				data, err := rt.Save()
				if err != nil {
					log.Printf("dgc-node: save: %v", err)
				} else if err := os.WriteFile(*stateFile, data, 0o644); err != nil {
					log.Printf("dgc-node: write %s: %v", *stateFile, err)
				} else {
					fmt.Printf("\nstate saved to %s (%d bytes)\n", *stateFile, len(data))
				}
			}
			rt.Close()
			fmt.Printf("dgc-node %s shutting down: %d objects, %d swept over %d ticks\n",
				*id, objects, s.ObjectsSwept, s.Clock)
			return
		}
	}
}
