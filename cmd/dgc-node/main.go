// dgc-node runs one process of the distributed system as a TCP daemon: an
// object heap with its local collector, reference-listing acyclic DGC and
// distributed cycle detector, driven by the wall-clock LiveRuntime (a
// mailbox goroutine with periodic daemon tickers — no manual tick loop).
//
// Usage:
//
//	dgc-node -id P1 -listen :7001 -peers P2=host2:7002,P3=host3:7003
//	         [-tick 250ms] [-lgc-every 2] [-snapshot-every 4] [-detect-every 4]
//	         [-snapshot-dir DIR] [-codec binary|reflect] [-seed-objects N]
//	         [-state-file FILE] [-metrics-addr :9090] [-batch-detect=false]
//
// With -metrics-addr the daemon serves the full admin control plane:
// Prometheus text at /metrics, versioned JSON diagnostics at /debug/dgc, and
// the /api/v1 operator API (status, tables, forced detection with trace ids,
// snapshot/restore, fault injection) that the dgcctl CLI drives.
//
// The -*-every flags are multiples of the tick period (e.g. -tick 250ms
// -lgc-every 2 runs the local collector every 500ms). Batched detection
// traffic is on by default; -batch-detect=false restores the unbatched
// reference behavior. On the first SIGINT/SIGTERM the daemon shuts down
// gracefully — collector state is flushed to -state-file (from which a
// restart resumes: heap, stub/scion tables with invocation counters,
// sequence numbers) and the transport closes cleanly. A second signal forces
// immediate exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dgc"
	"dgc/internal/admin"
)

func main() {
	var (
		id            = flag.String("id", "", "node identifier (required)")
		listen        = flag.String("listen", ":0", "listen address")
		peersFlag     = flag.String("peers", "", "comma-separated name=addr peer list")
		tick          = flag.Duration("tick", 250*time.Millisecond, "tick period")
		lgcEvery      = flag.Uint64("lgc-every", 2, "run the local GC every N ticks")
		snapEvery     = flag.Uint64("snapshot-every", 4, "summarize every N ticks")
		detectEvery   = flag.Uint64("detect-every", 4, "run cycle detection every N ticks")
		candidateAge  = flag.Uint64("candidate-age", 4, "scion quiescence ticks before candidacy")
		snapshotDir   = flag.String("snapshot-dir", "", "write serialized snapshots here")
		codecName     = flag.String("codec", "", "snapshot codec: binary or reflect")
		seedObjects   = flag.Int("seed-objects", 0, "allocate N rooted demo objects at startup")
		statsEvery    = flag.Int("stats-every", 10, "print stats every N ticks (0 = never)")
		broadcastDel  = flag.Bool("broadcast-delete", false, "broadcast scion deletion on cycle found")
		batchDetect   = flag.Bool("batch-detect", true, "batch multi-candidate detection traffic into BatchCDMs (-batch-detect=false for the unbatched reference path)")
		membershipOn  = flag.Bool("membership", true, "gossip membership directory with lease-guarded dead-node reclamation (-membership=false for a static cluster)")
		aggDetect     = flag.Bool("aggregate-detect", false, "hierarchical aggregation: partial matches return to the detection origin (implies -batch-detect)")
		callTimeoutTk = flag.Uint64("call-timeout", 40, "RPC timeout in ticks")
		stateFile     = flag.String("state-file", "", "persist collector state here: loaded at startup if present, saved on shutdown")
		metricsAddr   = flag.String("metrics-addr", "", "serve the admin API (Prometheus /metrics, /debug/dgc, /api/v1) on this address")
		adminToken    = flag.String("admin-token", os.Getenv("DGC_ADMIN_TOKEN"), "bearer token required on /api/v1 and /debug routes (default $DGC_ADMIN_TOKEN; empty = open)")
		pprofMode     = flag.String("pprof", "auto", "serve /debug/pprof on the admin address: on, off, or auto (loopback only)")
	)
	flag.Parse()
	if *id == "" {
		log.Fatal("dgc-node: -id is required")
	}

	spec := admin.NodeSpec{
		ID:          dgc.NodeID(*id),
		Listen:      *listen,
		Peers:       map[dgc.NodeID]string{},
		StateFile:   *stateFile,
		SeedObjects: *seedObjects,
	}
	if *peersFlag != "" {
		for _, kv := range strings.Split(*peersFlag, ",") {
			name, addr, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("dgc-node: malformed peer %q (want name=addr)", kv)
			}
			spec.Peers[dgc.NodeID(name)] = addr
		}
	}

	spec.Config = dgc.Config{
		CandidateMinAge:  *candidateAge,
		CallTimeoutTicks: *callTimeoutTk,
		SnapshotDir:      *snapshotDir,
	}
	spec.Config.Detector.BroadcastDelete = *broadcastDel
	spec.Config.BatchDetection = dgc.Bool(*batchDetect || *aggDetect)
	spec.Config.AggregateDetection = *aggDetect
	if *membershipOn {
		spec.Config.Membership = &dgc.MembershipConfig{}
	}
	switch *codecName {
	case "":
	case "binary":
		spec.Config.Codec = dgc.BinaryCodec{}
	case "reflect":
		spec.Config.Codec = dgc.ReflectCodec{}
	default:
		log.Fatalf("dgc-node: unknown codec %q", *codecName)
	}
	if spec.Config.SnapshotDir != "" && spec.Config.Codec == nil {
		spec.Config.Codec = dgc.BinaryCodec{}
	}

	// Daemon intervals are tick multiples; the runtime schedules them on
	// wall-clock tickers.
	spec.Runtime = dgc.RuntimeConfig{
		Tick:             *tick,
		LGCInterval:      time.Duration(*lgcEvery) * *tick,
		SnapshotInterval: time.Duration(*snapEvery) * *tick,
		DetectInterval:   time.Duration(*detectEvery) * *tick,
	}

	hadState := false
	if *stateFile != "" {
		if _, err := os.Stat(*stateFile); err == nil {
			hadState = true
		}
	}
	sup, err := admin.StartNode(spec)
	if err != nil {
		log.Fatal(err)
	}
	if hadState {
		fmt.Printf("restored state from %s (%d objects)\n", *stateFile, sup.DebugSnapshot().Objects)
	} else if *seedObjects > 0 {
		fmt.Printf("seeded %d rooted objects\n", *seedObjects)
	}
	fmt.Printf("dgc-node %s listening on %s (%d peers)\n", *id, sup.Addr(), len(spec.Peers))

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("dgc-node: metrics listen %s: %v", *metricsAddr, err)
		}
		srv := admin.NewServer(sup.Metrics())
		srv.SetToken(*adminToken)
		if admin.PprofEnabled(*pprofMode, *metricsAddr) {
			srv.EnablePprof()
			fmt.Printf("pprof profiles on http://%s/debug/pprof/\n", ln.Addr())
		}
		srv.AddNode(sup)
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		defer ln.Close()
		fmt.Printf("admin API on http://%s (metrics at /metrics, diagnostics at /debug/dgc, events at /api/v1/events)\n", ln.Addr())
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// The runtime drives itself; this loop only reports.
	var statsC <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(time.Duration(*statsEvery) * *tick)
		defer t.Stop()
		statsC = t.C
	}
	for {
		select {
		case <-statsC:
			s := sup.Stats()
			snap := sup.DebugSnapshot()
			fmt.Printf("[%s t=%d] objects=%d scions=%d stubs=%d swept=%d detections=%d cycles=%d aborted=%d\n",
				*id, s.Clock, snap.Objects, snap.Scions, snap.Stubs,
				s.ObjectsSwept, s.Detector.Started, s.Detector.CyclesFound, s.Detector.Aborted)
		case got := <-sig:
			// Graceful: state flush + clean runtime/transport close. A second
			// signal while that is in flight forces exit.
			go func() {
				<-sig
				fmt.Println("\nsecond signal, forcing exit")
				os.Exit(1)
			}()
			s := sup.Stats()
			objects := sup.DebugSnapshot().Objects
			if err := sup.Stop(); err != nil {
				log.Printf("dgc-node: shutdown: %v", err)
			} else if *stateFile != "" {
				fmt.Printf("\nstate saved to %s\n", *stateFile)
			}
			fmt.Printf("dgc-node %s shut down on %v: %d objects, %d swept over %d ticks\n",
				*id, got, objects, s.ObjectsSwept, s.Clock)
			return
		}
	}
}
