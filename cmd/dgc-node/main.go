// dgc-node runs one process of the distributed system as a TCP daemon: an
// object heap with its local collector, reference-listing acyclic DGC and
// distributed cycle detector, driven by a periodic tick.
//
// Usage:
//
//	dgc-node -id P1 -listen :7001 -peers P2=host2:7002,P3=host3:7003
//	         [-tick 250ms] [-lgc-every 2] [-snapshot-every 4] [-detect-every 4]
//	         [-snapshot-dir DIR] [-codec binary|reflect] [-seed-objects N]
//
// Start one dgc-node per machine (or per port for local experiments); the
// examples/tcpcluster program shows the same topology driven from a single
// process. The daemon prints a stats line every 10 ticks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dgc"
)

func main() {
	var (
		id            = flag.String("id", "", "node identifier (required)")
		listen        = flag.String("listen", ":0", "listen address")
		peersFlag     = flag.String("peers", "", "comma-separated name=addr peer list")
		tick          = flag.Duration("tick", 250*time.Millisecond, "tick period")
		lgcEvery      = flag.Uint64("lgc-every", 2, "run the local GC every N ticks")
		snapEvery     = flag.Uint64("snapshot-every", 4, "summarize every N ticks")
		detectEvery   = flag.Uint64("detect-every", 4, "run cycle detection every N ticks")
		candidateAge  = flag.Uint64("candidate-age", 4, "scion quiescence ticks before candidacy")
		snapshotDir   = flag.String("snapshot-dir", "", "write serialized snapshots here")
		codecName     = flag.String("codec", "", "snapshot codec: binary or reflect")
		seedObjects   = flag.Int("seed-objects", 0, "allocate N rooted demo objects at startup")
		statsEvery    = flag.Int("stats-every", 10, "print stats every N ticks (0 = never)")
		broadcastDel  = flag.Bool("broadcast-delete", false, "broadcast scion deletion on cycle found")
		callTimeoutTk = flag.Uint64("call-timeout", 40, "RPC timeout in ticks")
		stateFile     = flag.String("state-file", "", "persist collector state here: loaded at startup if present, saved on shutdown")
	)
	flag.Parse()
	if *id == "" {
		log.Fatal("dgc-node: -id is required")
	}

	peers := map[dgc.NodeID]string{}
	if *peersFlag != "" {
		for _, kv := range strings.Split(*peersFlag, ",") {
			name, addr, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("dgc-node: malformed peer %q (want name=addr)", kv)
			}
			peers[dgc.NodeID(name)] = addr
		}
	}

	ep, err := dgc.ListenTCP(dgc.NodeID(*id), *listen, peers)
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	cfg := dgc.Config{
		LGCEvery:         *lgcEvery,
		SnapshotEvery:    *snapEvery,
		DetectEvery:      *detectEvery,
		CandidateMinAge:  *candidateAge,
		CallTimeoutTicks: *callTimeoutTk,
		SnapshotDir:      *snapshotDir,
	}
	cfg.Detector.BroadcastDelete = *broadcastDel
	switch *codecName {
	case "":
	case "binary":
		cfg.Codec = dgc.BinaryCodec{}
	case "reflect":
		cfg.Codec = dgc.ReflectCodec{}
	default:
		log.Fatalf("dgc-node: unknown codec %q", *codecName)
	}
	if cfg.SnapshotDir != "" && cfg.Codec == nil {
		cfg.Codec = dgc.BinaryCodec{}
	}

	var n *dgc.Node
	if *stateFile != "" {
		if data, err := os.ReadFile(*stateFile); err == nil {
			n, err = dgc.RestoreNode(ep, cfg, data)
			if err != nil {
				log.Fatalf("dgc-node: restore %s: %v", *stateFile, err)
			}
			fmt.Printf("restored state from %s (%d objects)\n", *stateFile, n.NumObjects())
		} else if !os.IsNotExist(err) {
			log.Fatalf("dgc-node: read %s: %v", *stateFile, err)
		}
	}
	if n == nil {
		n = dgc.NewNode(dgc.NodeID(*id), ep, cfg)
	}
	fmt.Printf("dgc-node %s listening on %s (%d peers)\n", *id, ep.Addr(), len(peers))

	if *seedObjects > 0 {
		n.With(func(m dgc.Mutator) {
			for i := 0; i < *seedObjects; i++ {
				obj := m.Alloc(nil)
				if err := m.Root(obj); err != nil {
					log.Fatal(err)
				}
			}
		})
		fmt.Printf("seeded %d rooted objects\n", *seedObjects)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()

	ticks := 0
	for {
		select {
		case <-ticker.C:
			n.Tick()
			ticks++
			if *statsEvery > 0 && ticks%*statsEvery == 0 {
				s := n.Stats()
				fmt.Printf("[%s t=%d] objects=%d scions=%d stubs=%d swept=%d detections=%d cycles=%d aborted=%d\n",
					*id, s.Clock, n.NumObjects(), n.NumScions(), n.NumStubs(),
					s.ObjectsSwept, s.Detector.Started, s.Detector.CyclesFound, s.Detector.Aborted)
			}
		case <-sig:
			s := n.Stats()
			if *stateFile != "" {
				data, err := n.Save()
				if err != nil {
					log.Printf("dgc-node: save: %v", err)
				} else if err := os.WriteFile(*stateFile, data, 0o644); err != nil {
					log.Printf("dgc-node: write %s: %v", *stateFile, err)
				} else {
					fmt.Printf("\nstate saved to %s (%d bytes)\n", *stateFile, len(data))
				}
			}
			fmt.Printf("dgc-node %s shutting down: %d objects, %d swept over %d ticks\n",
				*id, n.NumObjects(), s.ObjectsSwept, s.Clock)
			return
		}
	}
}
