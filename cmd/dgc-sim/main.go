// dgc-sim runs one named scenario on a simulated cluster and prints
// per-round progress: a workbench for watching the collectors operate.
//
// Usage:
//
//	dgc-sim [-scenario figure1|figure3|figure4|ring|acyclic|random]
//	        [-procs N] [-chain N] [-seed N] [-rounds N]
//	        [-loss F] [-dup F] [-reorder F] [-broadcast] [-v]
//	        [-metrics-addr :9090] [-metrics-json]
//
// Examples:
//
//	dgc-sim -scenario figure4
//	dgc-sim -scenario ring -procs 16 -chain 3 -loss 0.2
//	dgc-sim -scenario random -seed 7 -procs 6
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"text/tabwriter"

	"dgc"
	"dgc/internal/admin"
)

func main() {
	var (
		scenario  = flag.String("scenario", "figure3", "topology to run")
		procs     = flag.Int("procs", 4, "processes (ring/acyclic/random)")
		chain     = flag.Int("chain", 2, "objects per process (ring)")
		seed      = flag.Int64("seed", 1, "seed (random topology and faults)")
		rounds    = flag.Int("rounds", 0, "max GC rounds (0 = 3*procs+10)")
		loss      = flag.Float64("loss", 0, "GC message loss rate")
		dup       = flag.Float64("dup", 0, "GC message duplication rate")
		reorder   = flag.Float64("reorder", 0, "GC message reorder rate")
		broadcast = flag.Bool("broadcast", false, "broadcast scion deletion on cycle found")
		verbose   = flag.Bool("v", false, "print per-node stats at the end")
		traceN    = flag.Int("trace", 0, "print the last N collector events")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/dgc on this address during the run")
		metricsJSON = flag.Bool("metrics-json", false, "dump the full metric set as one JSON object per round")
		pprofMode   = flag.String("pprof", "auto", "serve /debug/pprof on the metrics address: on, off, or auto (loopback only)")
	)
	flag.Parse()

	var topo *dgc.Topology
	switch *scenario {
	case "figure1":
		topo = dgc.Figure1()
	case "figure3":
		topo = dgc.Figure3()
	case "figure4":
		topo = dgc.Figure4()
	case "ring":
		topo = dgc.Ring(*procs, *chain)
	case "acyclic":
		topo = dgc.AcyclicChain(*procs)
	case "random":
		topo = dgc.RandomGraph(*seed, dgc.RandomConfig{
			Procs: *procs, ObjsPerProc: 6, OutDegree: 1.8, RemoteFrac: 0.4, RootFrac: 0.1,
		})
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	cfg := dgc.Config{Metrics: dgc.NewMetricsSet()}
	cfg.Detector.BroadcastDelete = *broadcast
	var events *dgc.TraceLog
	if *traceN > 0 {
		events = dgc.NewTraceLog(*traceN)
		cfg.Trace = events
	} else if *metricsAddr != "" {
		// The admin event stream (/api/v1/events) reads the shared journal;
		// give it one even when -trace printing is off.
		cfg.Trace = dgc.NewTraceLog(8192)
	}
	c := dgc.NewCluster(*seed, cfg)
	if _, err := c.Materialize(topo, cfg); err != nil {
		log.Fatal(err)
	}
	if *loss > 0 || *dup > 0 || *reorder > 0 {
		c.Net.SetFaults(dgc.Faults{
			LossRate: *loss, DupRate: *dup, ReorderRate: *reorder,
			Affects: dgc.GCTraffic(),
		})
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen %s: %v", *metricsAddr, err)
		}
		defer ln.Close()
		srv := admin.NewServer(cfg.Metrics)
		if admin.PprofEnabled(*pprofMode, *metricsAddr) {
			srv.EnablePprof()
		}
		for _, n := range c.Nodes() {
			srv.AddNode(n)
		}
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	live := c.GlobalLive()
	fmt.Printf("scenario %s: %d objects (%d reachable from roots), %d scions, %d stubs\n",
		topo.Name, c.TotalObjects(), len(live), c.TotalScions(), c.TotalStubs())

	maxRounds := *rounds
	if maxRounds == 0 {
		maxRounds = 3*len(topo.Nodes()) + 10
	}
	round := 0
	for round < maxRounds {
		before := c.TotalObjects()
		c.GCRound()
		round++
		fmt.Printf("round %2d: objects %d -> %d, scions %d, stubs %d\n",
			round, before, c.TotalObjects(), c.TotalScions(), c.TotalStubs())
		if *metricsJSON {
			blob, err := json.Marshal(cfg.Metrics.Dump())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("metrics %s\n", blob)
		}
		if c.TotalObjects() == len(live) && c.TotalObjects() == before && round > 2 {
			break
		}
	}

	if v := c.LiveViolations(live); len(v) != 0 {
		log.Fatalf("SAFETY VIOLATION: live objects reclaimed: %v", v)
	}
	leaked := c.TotalObjects() - len(live)
	fmt.Printf("\nfinal: %d objects (%d expected live, %d leaked) after %d rounds\n",
		c.TotalObjects(), len(live), leaked, round)

	if *verbose {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "node\tswept\tdetections\tcycles\taborted\tCDMs sent\tstub sets")
		for _, n := range c.Nodes() {
			s := n.Stats()
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				n.ID(), s.ObjectsSwept, s.Detector.Started, s.Detector.CyclesFound,
				s.Detector.Aborted, s.Detector.CDMsSent, s.StubSetsSent)
		}
		w.Flush()
	}
	if events != nil {
		fmt.Println("\ncollector events (most recent last):")
		for _, e := range events.Snapshot() {
			fmt.Println("  " + e.String())
		}
	}
	if leaked > 0 {
		os.Exit(1)
	}
}
