// dgcctl is the operator CLI for dgc clusters: status, live top, table
// dumps, forced cycle detection with trace-id follow, fault injection
// (kill/restart/delay/drop/partition/heal), state snapshot/restore, and a
// declarative cluster launcher (`dgcctl up -f cluster.yaml`). It drives any
// process serving the internal/admin JSON API — dgc-node daemons, dgc-sim,
// or a cluster started by `dgcctl up` itself.
//
//	dgcctl up -f cluster.yaml &
//	dgcctl status
//	dgcctl detect -scion 'A->1@B' -follow
//	dgcctl inject kill -node B -recover 2s
//
// Run `dgcctl help` for the full command list.
package main

import (
	"os"

	"dgc/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
