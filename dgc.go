// Package dgc is an asynchronous, complete distributed garbage collector:
// a Go reproduction of Veiga & Ferreira, "Asynchronous Complete Distributed
// Garbage Collection" (IPPS 2005).
//
// The library provides, per process ("node"):
//
//   - an object heap with local roots and a tracing local collector;
//   - a reference-listing acyclic distributed collector (stubs, scions and
//     NewSetStubs messages), tolerant to message loss, duplication and
//     reordering;
//   - graph snapshots (with pluggable serialization codecs) summarized into
//     the per-scion/per-stub reachability relations the detector needs;
//   - the paper's contribution: a distributed cycle detector (DCDA) that
//     finds and reclaims distributed cycles of garbage using an algebraic
//     cycle-detection message (CDM), with no global synchronization, no
//     per-detection state at intermediate processes, and invocation
//     counters that abort detections raced by the mutator;
//   - a remote invocation layer that instruments reference export/import
//     exactly as the paper's Remoting instrumentation does.
//
// Nodes communicate over a pluggable transport: a deterministic in-process
// fabric with fault injection (NewCluster) for simulation and testing, or
// real TCP sockets (ListenTCP + NewNode) for distributed deployment.
//
// # Quick start
//
//	c := dgc.NewCluster(1, dgc.Config{})
//	refs, _ := c.Materialize(dgc.Figure3(), dgc.Config{})
//	c.CollectFully(12) // cycle detected and reclaimed
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package dgc

import (
	"net/http"

	"dgc/internal/cluster"
	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/membership"
	"dgc/internal/node"
	"dgc/internal/obs"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/transport"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// Identifier types.
type (
	// NodeID names a process.
	NodeID = ids.NodeID
	// ObjID identifies an object within one process.
	ObjID = ids.ObjID
	// GlobalRef names an object anywhere: owner node plus object id.
	GlobalRef = ids.GlobalRef
	// RefID identifies one inter-process reference (stub/scion pair).
	RefID = ids.RefID
)

// Node-level types.
type (
	// Config tunes one node; the zero value is a sensible default
	// (manual GC driving, unlimited detections, no snapshot codec).
	Config = node.Config
	// DetectorConfig tunes the cycle detector inside Config.Detector.
	DetectorConfig = core.Config
	// Node is one process: heap, collectors, detector and RPC.
	Node = node.Node
	// Mutator is the application's heap view inside With/method/reply
	// callbacks.
	Mutator = node.Mutator
	// Reply is a remote invocation result.
	Reply = node.Reply
	// ReplyFunc consumes a Reply.
	ReplyFunc = node.ReplyFunc
	// Method implements a remotely invocable method.
	Method = node.Method
	// Stats are a node's activity counters.
	Stats = node.Stats
	// Machine is the pure protocol core a driver schedules (see DESIGN.md §8).
	Machine = node.Machine
	// LiveRuntime is the wall-clock driver: a mailbox goroutine per node
	// with periodic daemon tickers, for real deployments.
	LiveRuntime = node.LiveRuntime
	// RuntimeConfig tunes a LiveRuntime's tick and daemon intervals.
	RuntimeConfig = node.RuntimeConfig
)

// ErrRuntimeClosed is returned by LiveRuntime entry points after Close.
var ErrRuntimeClosed = node.ErrRuntimeClosed

// Bool returns a pointer to v, for Config's tri-state fields
// (e.g. BatchDetection, where nil means the default, on).
func Bool(v bool) *bool { return node.Bool(v) }

// Cluster membership types: configure Config.Membership to enable the
// elastic gossip directory with lease-guarded dead-node reclamation
// (see internal/membership and DESIGN.md §14).
type (
	// MembershipConfig tunes the gossip directory and failure detector.
	MembershipConfig = membership.Config
	// Member is one membership directory record.
	Member = membership.Member
	// MemberState is a member's lifecycle position.
	MemberState = membership.State
)

// Membership lifecycle states.
const (
	MemberJoining  = membership.Joining
	MemberAlive    = membership.Alive
	MemberSuspect  = membership.Suspect
	MemberDraining = membership.Draining
	MemberDead     = membership.Dead
)

// Cluster-level types.
type (
	// Cluster is a simulated set of nodes over the deterministic
	// in-process transport.
	Cluster = cluster.Cluster
	// Faults configures the in-process transport's fault injection.
	Faults = transport.Faults
	// Topology is an abstract distributed object graph (see the workload
	// constructors below).
	Topology = workload.Topology
	// RandomConfig parameterizes RandomGraph.
	RandomConfig = workload.RandomConfig
)

// Snapshot codecs (the serialization experiment of §4).
type (
	// Codec serializes process snapshots.
	Codec = snapshot.Codec
	// BinaryCodec is the fast, compact snapshot serializer.
	BinaryCodec = snapshot.BinaryCodec
	// ReflectCodec is the deliberately naive reflective serializer
	// standing in for Rotor's.
	ReflectCodec = snapshot.ReflectCodec
)

// NewCluster creates a simulation cluster of nodes named names, all with
// configuration cfg, over a deterministic in-process network seeded with
// seed (the seed only drives fault injection).
func NewCluster(seed int64, cfg Config, names ...NodeID) *Cluster {
	return cluster.New(seed, cfg, names...)
}

// NewNode assembles a standalone node over any transport endpoint — use
// ListenTCP for a real-socket deployment. The node installs itself as the
// endpoint's handler.
func NewNode(id NodeID, ep transport.Endpoint, cfg Config) *Node {
	return node.New(id, ep, cfg)
}

// RestoreNode reconstructs a node from state produced by (*Node).Save,
// attaching it to the endpoint: the persistent-store restart path. Heap,
// stub/scion tables (with invocation counters) and reference-listing
// sequence numbers survive; in-flight calls and detection caches do not
// (they are volatile by design).
func RestoreNode(ep transport.Endpoint, cfg Config, state []byte) (*Node, error) {
	return node.Restore(ep, cfg, state)
}

// NewLiveRuntime assembles a wall-clock node over the endpoint and starts
// its event loop and daemon tickers: the engine of a real deployment
// (cmd/dgc-node, examples/tcpcluster). Close stops it; the caller closes
// the endpoint separately.
func NewLiveRuntime(id NodeID, ep transport.Endpoint, cfg Config, rcfg RuntimeConfig) *LiveRuntime {
	return node.NewLiveRuntime(id, ep, cfg, rcfg)
}

// RestoreLiveRuntime reconstructs a live node from state produced by Save
// and starts it: the persistent-store restart path for real deployments.
func RestoreLiveRuntime(ep transport.Endpoint, cfg Config, rcfg RuntimeConfig, state []byte) (*LiveRuntime, error) {
	return node.RestoreLiveRuntime(ep, cfg, rcfg, state)
}

// ListenTCP opens a TCP endpoint for node id at addr ("host:port"; port 0
// picks an ephemeral port, see (*TCPEndpoint).Addr). peers maps other node
// names to their dial addresses and may be extended later with AddPeer.
func ListenTCP(id NodeID, addr string, peers map[NodeID]string) (*transport.TCPEndpoint, error) {
	return transport.ListenTCP(id, addr, peers)
}

// TCPEndpoint re-exports the TCP transport endpoint type.
type TCPEndpoint = transport.TCPEndpoint

// Tracing types: configure Config.Trace with NewTraceLog to observe the
// collectors (see internal/trace).
type (
	// TraceLog is a bounded, thread-safe event ring.
	TraceLog = trace.Log
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
)

// NewTraceLog returns an event log retaining the most recent capacity
// events.
func NewTraceLog(capacity int) *TraceLog { return trace.New(capacity) }

// Journal event kinds most useful to embedders filtering a TraceLog or
// benchmarking emission overhead (the full set lives in internal/trace).
const (
	TraceKindCDMHandled = trace.KindCDMHandled
	TraceKindCDMSent    = trace.KindCDMSent
)

// Observability types: configure Config.Metrics with NewMetricsSet, serve it
// with MetricsHandler, and read structural diagnostics via DebugSnapshot
// (see internal/obs and DESIGN.md §9).
type (
	// MetricsSet groups the per-node metric registries of one process (or
	// one simulated cluster); it is what /metrics serves.
	MetricsSet = obs.Set
	// MetricsRegistry is one labeled registry of counters, gauges and
	// histograms.
	MetricsRegistry = obs.Registry
	// NodeMetrics is the per-node instrument block (detections, LGC,
	// scions, mailbox, ...).
	NodeMetrics = obs.NodeMetrics
	// TransportMetrics is the per-endpoint instrument block (messages,
	// bytes, batches, dials, ...).
	TransportMetrics = obs.TransportMetrics
	// DebugSnapshot is the /debug/dgc JSON view of one node's collector
	// state, including inflight detections with their causal trace ids.
	DebugSnapshot = node.DebugSnapshot
)

// NewMetricsSet returns an empty metrics set; pass it as Config.Metrics to
// every node that should publish into it.
func NewMetricsSet() *MetricsSet { return obs.NewSet() }

// NewMetricsRegistry returns a standalone unlabeled registry (useful for
// transport metrics or tests).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewNodeMetrics registers (or rebinds) the node instrument block in reg.
func NewNodeMetrics(reg *MetricsRegistry) *NodeMetrics { return obs.NewNodeMetrics(reg) }

// NewTransportMetrics registers (or rebinds) the transport instrument block
// in reg; hand it to (*TCPEndpoint).SetMetrics or (*Network).SetMetrics.
func NewTransportMetrics(reg *MetricsRegistry) *TransportMetrics {
	return obs.NewTransportMetrics(reg)
}

// MetricsHandler serves set as Prometheus text at /metrics and, when debug
// is non-nil, its value as JSON at /debug/dgc.
func MetricsHandler(set *MetricsSet, debug func() any) http.Handler {
	return obs.NewHTTPHandler(set, debug)
}

// GCTraffic returns the message kinds belonging to the garbage collector's
// own protocol (NewSetStubs, CDM, DeleteScion). Use it as Faults.Affects to
// inject faults into collector traffic only — the paper's loss-tolerance
// claim is about these messages; application RPCs have their own delivery
// semantics.
func GCTraffic() []wire.Kind {
	return []wire.Kind{wire.KindNewSetStubs, wire.KindCDM, wire.KindDeleteScion}
}

// Workload constructors (see internal/workload for details).
var (
	// Ring builds a distributed garbage cycle over procs processes with
	// chain objects each — the generalized Figure 3.
	Ring = workload.Ring
	// LiveRing is Ring with the head rooted: a live cycle.
	LiveRing = workload.LiveRing
	// Figure1, Figure3 and Figure4 are the paper's figures verbatim.
	Figure1 = workload.Figure1
	Figure3 = workload.Figure3
	Figure4 = workload.Figure4
	// AcyclicChain is purely acyclic distributed garbage.
	AcyclicChain = workload.AcyclicChain
	// RandomGraph builds a seeded random distributed graph.
	RandomGraph = workload.RandomGraph
	// RingHead names the ring entry object in Ring/LiveRing topologies.
	RingHead = workload.RingHead
)
