package dgc_test

import (
	"testing"
	"time"

	"dgc"
)

// Live membership end-to-end tests over real TCP sockets: the gossip
// directory, phi-accrual failure detector and holder leases running under
// the wall-clock daemons with no manual driving. Two lifecycles are
// exercised — a crash (kill-reclaim: the dead node's scions are reclaimed
// after its lease lapses, and nobody else's are) and a graceful departure
// (drain-migrate: leases hand off custodially and release when the drained
// node retires) — and in both the surviving nodes must still collect a
// distributed garbage cycle afterwards.

// memberTrio starts A, B, C with membership enabled, full mesh, short
// wall-clock intervals. Returns runtimes and endpoints keyed by node.
func memberTrio(t *testing.T) (map[dgc.NodeID]*dgc.LiveRuntime, map[dgc.NodeID]*dgc.TCPEndpoint) {
	t.Helper()
	names := []dgc.NodeID{"A", "B", "C"}
	eps := make(map[dgc.NodeID]*dgc.TCPEndpoint, 3)
	for _, n := range names {
		ep, err := dgc.ListenTCP(n, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		eps[n] = ep
	}
	for _, n := range names {
		for _, p := range names {
			if n != p {
				eps[n].AddPeer(p, eps[p].Addr())
			}
		}
	}
	cfg := dgc.Config{
		CallTimeoutTicks: 400,
		CandidateMinAge:  2,
		Membership: &dgc.MembershipConfig{
			GossipEvery:  2,
			SuspectAfter: 10,
			DeadAfter:    10,
			LeaseTicks:   30,
			DrainLinger:  4,
		},
	}
	rcfg := dgc.RuntimeConfig{
		Tick:             10 * time.Millisecond,
		LGCInterval:      20 * time.Millisecond,
		SnapshotInterval: 40 * time.Millisecond,
		DetectInterval:   40 * time.Millisecond,
	}
	nodes := make(map[dgc.NodeID]*dgc.LiveRuntime, 3)
	for _, n := range names {
		nodes[n] = dgc.NewLiveRuntime(n, eps[n], cfg, rcfg)
	}
	t.Cleanup(func() {
		for _, n := range names {
			nodes[n].Close()
			eps[n].Close()
		}
	})
	for _, n := range names {
		nodes[n].SetAdvertiseAddr(eps[n].Addr())
		for _, p := range names {
			if n != p {
				if err := nodes[n].AddMember(p, eps[p].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return nodes, eps
}

// memberAlloc allocates one object on a node, optionally rooted.
func memberAlloc(t *testing.T, rt *dgc.LiveRuntime, rooted bool, payload string) dgc.ObjID {
	t.Helper()
	var obj dgc.ObjID
	if err := rt.With(func(m dgc.Mutator) {
		obj = m.Alloc([]byte(payload))
		if rooted {
			if err := m.Root(obj); err != nil {
				t.Error(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return obj
}

// memberLink makes holder (an object on from) reference target over the wire.
func memberLink(t *testing.T, from *dgc.LiveRuntime, holder dgc.ObjID, target dgc.GlobalRef) {
	t.Helper()
	done := make(chan bool, 1)
	if err := from.AcquireRemote(target, func(m dgc.Mutator, ok bool) {
		if ok {
			ok = m.Store(holder, target) == nil
		}
		done <- ok
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatalf("linking to %s failed", target)
		}
	case <-time.After(e2eDeadline):
		t.Fatalf("linking to %s timed out", target)
	}
}

// memberView reports how rt's directory currently classifies peer.
func memberView(rt *dgc.LiveRuntime, peer dgc.NodeID) (dgc.MemberState, bool) {
	for _, m := range rt.Members() {
		if m.Node == peer {
			return m.State, true
		}
	}
	return 0, false
}

// memberTopology builds the shared fixture: a rooted A<->B cycle (anchorA
// holds anchorB and vice versa, anchorA rooted) plus an extra object X on A
// referenced only by C's rooted anchor. Returns anchorA, anchorB, x.
func memberTopology(t *testing.T, nodes map[dgc.NodeID]*dgc.LiveRuntime) (dgc.ObjID, dgc.ObjID, dgc.ObjID) {
	t.Helper()
	// Everything starts rooted so the periodic local collectors already
	// running underneath can't sweep a link target before its CreateScion
	// lands; the roots that shouldn't persist are dropped after linking.
	anchorA := memberAlloc(t, nodes["A"], true, "anchor-A")
	anchorB := memberAlloc(t, nodes["B"], true, "anchor-B")
	x := memberAlloc(t, nodes["A"], true, "x")
	anchorC := memberAlloc(t, nodes["C"], true, "anchor-C")
	memberLink(t, nodes["A"], anchorA, dgc.GlobalRef{Node: "B", Obj: anchorB})
	memberLink(t, nodes["B"], anchorB, dgc.GlobalRef{Node: "A", Obj: anchorA})
	memberLink(t, nodes["C"], anchorC, dgc.GlobalRef{Node: "A", Obj: x})
	if err := nodes["B"].With(func(m dgc.Mutator) { m.Unroot(anchorB) }); err != nil {
		t.Fatal(err)
	}
	if err := nodes["A"].With(func(m dgc.Mutator) { m.Unroot(x) }); err != nil {
		t.Fatal(err)
	}
	// Two scions at A (B -> anchorA, C -> x), one at B (A -> anchorB).
	e2eWait(t, "initial scion layout", func() bool {
		return nodes["A"].NumScions() == 2 && nodes["B"].NumScions() == 1
	})
	return anchorA, anchorB, x
}

func TestLiveMembershipKillReclaimsOnlyDeadHoldersScions(t *testing.T) {
	nodes, eps := memberTrio(t)
	anchorA, _, _ := memberTopology(t, nodes)

	e2eWait(t, "all-alive directory convergence", func() bool {
		for _, rt := range nodes {
			for _, p := range []dgc.NodeID{"A", "B", "C"} {
				if st, ok := memberView(rt, p); !ok || st != dgc.MemberAlive {
					return false
				}
			}
		}
		return true
	})

	// Quiet period while everyone is alive: leases renew off gossip traffic,
	// so nothing may be reclaimed even with a 300ms lease horizon.
	time.Sleep(600 * time.Millisecond)
	if got := nodes["A"].NumScions(); got != 2 {
		t.Fatalf("A scions = %d while all holders alive, want 2", got)
	}

	// Kill C for good: close its runtime and socket, no restart.
	nodes["C"].Close()
	eps["C"].Close()

	// A declares C dead, C's lease lapses, and exactly the scion C held
	// (for x) is reclaimed; the local collector then sweeps x itself.
	e2eWait(t, "A to declare C dead", func() bool {
		st, ok := memberView(nodes["A"], "C")
		return ok && st == dgc.MemberDead
	})
	e2eWait(t, "dead C's scion reclaimed and x swept", func() bool {
		return nodes["A"].NumScions() == 1 && nodes["A"].NumObjects() == 1
	})
	// Zero false reclamations: the live A<->B edges kept their scions.
	if got := nodes["B"].NumScions(); got != 1 {
		t.Fatalf("B scions = %d after C's death, want 1 (A's live reference reclaimed)", got)
	}

	// The survivors still collect distributed cycles: unroot anchorA and the
	// A<->B cycle is garbage only the detector can reclaim.
	if err := nodes["A"].With(func(m dgc.Mutator) { m.Unroot(anchorA) }); err != nil {
		t.Fatal(err)
	}
	e2eWait(t, "cycle reclamation with a dead member in the directory", func() bool {
		return nodes["A"].NumObjects() == 0 && nodes["B"].NumObjects() == 0
	})
}

func TestLiveMembershipDrainHandsOffAndCycleStillCollects(t *testing.T) {
	nodes, _ := memberTrio(t)
	anchorA, _, _ := memberTopology(t, nodes)

	e2eWait(t, "all-alive directory convergence", func() bool {
		for _, rt := range nodes {
			for _, p := range []dgc.NodeID{"A", "B", "C"} {
				if st, ok := memberView(rt, p); !ok || st != dgc.MemberAlive {
					return false
				}
			}
		}
		return true
	})

	// Graceful departure: C announces the drain, hands its lease on x over to
	// A custodially, lingers, and retires itself. A releases the custodial
	// pin when the directory marks C dead, and x is swept.
	if err := nodes["C"].BeginDrain(); err != nil {
		t.Fatal(err)
	}
	e2eWait(t, "A to see C retire after the drain", func() bool {
		st, ok := memberView(nodes["A"], "C")
		return ok && st == dgc.MemberDead
	})
	e2eWait(t, "drained C's scion released and x swept", func() bool {
		return nodes["A"].NumScions() == 1 && nodes["A"].NumObjects() == 1
	})
	if got := nodes["B"].NumScions(); got != 1 {
		t.Fatalf("B scions = %d after C drained, want 1", got)
	}

	// The remaining pair still collects the distributed cycle.
	if err := nodes["A"].With(func(m dgc.Mutator) { m.Unroot(anchorA) }); err != nil {
		t.Fatal(err)
	}
	e2eWait(t, "cycle reclamation after a drain", func() bool {
		return nodes["A"].NumObjects() == 0 && nodes["B"].NumObjects() == 0
	})
}
