package dgc_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dgc"
)

// The live end-to-end test: a three-process distributed garbage cycle is
// built through RPC over real TCP sockets and reclaimed by the wall-clock
// LiveRuntime daemons alone — no simulation harness, no cluster.Settle, no
// manual GC driving. Midway, one node is killed (state saved, runtime and
// socket closed) and restarted on a fresh ephemeral port from its persisted
// state; any detection in flight across it aborts safely and restarts, and
// the cycle is still fully reclaimed.

const e2eDeadline = 20 * time.Second

func e2eWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(e2eDeadline)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLiveE2ECycleCollectedAcrossRestart(t *testing.T) {
	names := []dgc.NodeID{"A", "B", "C"}
	eps := make(map[dgc.NodeID]*dgc.TCPEndpoint, 3)
	for _, n := range names {
		ep, err := dgc.ListenTCP(n, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		eps[n] = ep
	}
	for _, n := range names {
		for _, p := range names {
			if n != p {
				eps[n].AddPeer(p, eps[p].Addr())
			}
		}
	}

	// One metric set spans all three nodes and survives B's restart: the
	// restored machine rebinds the same labeled series, so counters continue
	// rather than reset.
	metrics := dgc.NewMetricsSet()
	for _, n := range names {
		eps[n].SetMetrics(dgc.NewTransportMetrics(metrics.Node(string(n))))
	}

	cfg := dgc.Config{CallTimeoutTicks: 400, CandidateMinAge: 2, Metrics: metrics}
	rcfg := dgc.RuntimeConfig{
		Tick:             10 * time.Millisecond,
		LGCInterval:      20 * time.Millisecond,
		SnapshotInterval: 40 * time.Millisecond,
		DetectInterval:   40 * time.Millisecond,
	}
	nodes := make(map[dgc.NodeID]*dgc.LiveRuntime, 3)
	for _, n := range names {
		nodes[n] = dgc.NewLiveRuntime(n, eps[n], cfg, rcfg)
	}
	defer func() {
		for _, n := range names {
			nodes[n].Close()
			eps[n].Close()
		}
	}()

	// Serve the cluster's observability surface exactly as cmd/dgc-node does
	// and scrape it over HTTP like a real collector would. The debug closure
	// is only invoked from scrape(), which blocks this goroutine, so it never
	// races the nodes-map mutation during B's restart below.
	srv := httptest.NewServer(dgc.MetricsHandler(metrics, func() any {
		out := map[string]any{}
		for _, n := range names {
			out[string(n)] = nodes[n].DebugSnapshot()
		}
		return out
	}))
	defer srv.Close()
	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	// One anchor object per node, all rooted while we build: the periodic
	// local collectors are already running underneath, and an unrooted
	// anchor with no scion yet would be swept if an LGC pass won the race
	// against the incoming CreateScion. B's and C's roots are dropped once
	// the ring is linked; only A's persists.
	anchors := make(map[dgc.NodeID]dgc.GlobalRef, 3)
	for _, n := range names {
		var obj dgc.ObjID
		if err := nodes[n].With(func(m dgc.Mutator) {
			obj = m.Alloc([]byte("anchor-" + string(n)))
			if err := m.Root(obj); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		anchors[n] = dgc.GlobalRef{Node: n, Obj: obj}
	}

	// Ring A -> B -> C -> A via acquire + store RPCs over the wire.
	link := func(from, to dgc.NodeID) {
		t.Helper()
		done := make(chan bool, 1)
		target := anchors[to]
		holder := anchors[from].Obj
		if err := nodes[from].AcquireRemote(target, func(m dgc.Mutator, ok bool) {
			if ok {
				ok = m.Store(holder, target) == nil
			}
			done <- ok
		}); err != nil {
			t.Fatal(err)
		}
		select {
		case ok := <-done:
			if !ok {
				t.Fatalf("linking %s -> %s failed", from, to)
			}
		case <-time.After(e2eDeadline):
			t.Fatalf("linking %s -> %s timed out", from, to)
		}
	}
	link("A", "B")
	link("B", "C")
	link("C", "A")
	for _, n := range []dgc.NodeID{"B", "C"} {
		obj := anchors[n].Obj
		if err := nodes[n].With(func(m dgc.Mutator) { m.Unroot(obj) }); err != nil {
			t.Fatal(err)
		}
	}

	total := func() int {
		sum := 0
		for _, n := range names {
			sum += nodes[n].NumObjects()
		}
		return sum
	}

	// The rooted ring must survive the periodic local collections that are
	// already running underneath us.
	time.Sleep(100 * time.Millisecond)
	if got := total(); got != 3 {
		t.Fatalf("rooted ring shrank to %d objects", got)
	}

	// Unroot: the ring is now a distributed garbage cycle only the cycle
	// detector can reclaim. Wait for a detection to actually start...
	if err := nodes["A"].With(func(m dgc.Mutator) { m.Unroot(anchors["A"].Obj) }); err != nil {
		t.Fatal(err)
	}
	e2eWait(t, "a detection to start", func() bool {
		for _, n := range names {
			if nodes[n].Stats().Detector.Started > 0 {
				return true
			}
		}
		return false
	})

	// Mid-run scrape: the full metric surface is live while detections are
	// in flight, and the structural diagnostic serves every node.
	if families := strings.Count(scrape("/metrics"), "# TYPE dgc_"); families < 15 {
		t.Fatalf("only %d dgc_ metric families exposed mid-run", families)
	}
	if debug := scrape("/debug/dgc"); !strings.Contains(debug, `"node": "B"`) {
		t.Fatalf("debug snapshot missing node structure:\n%s", debug)
	}

	// ...then kill B mid-detection: persist its collector state, stop its
	// runtime and close its socket.
	state, err := nodes["B"].Save()
	if err != nil {
		t.Fatal(err)
	}
	nodes["B"].Close()
	if err := eps["B"].Close(); err != nil {
		t.Fatal(err)
	}

	// Restart B on a fresh ephemeral port from the persisted state and
	// repoint its peers at the new address.
	epB, err := dgc.ListenTCP("B", "127.0.0.1:0", map[dgc.NodeID]string{
		"A": eps["A"].Addr(),
		"C": eps["C"].Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eps["B"] = epB
	epB.SetMetrics(dgc.NewTransportMetrics(metrics.Node("B")))
	rb, err := dgc.RestoreLiveRuntime(epB, cfg, rcfg, state)
	if err != nil {
		t.Fatal(err)
	}
	nodes["B"] = rb
	eps["A"].AddPeer("B", epB.Addr())
	eps["C"].AddPeer("B", epB.Addr())

	// The restarted node resumes as if it had merely been slow: the
	// detection spanning the restart aborts safely and a later round
	// reclaims the whole cycle, with zero manual driving.
	e2eWait(t, "cycle reclamation after restart", func() bool { return total() == 0 })

	found := uint64(0)
	for _, n := range names {
		found += nodes[n].Stats().Detector.CyclesFound
	}
	if found == 0 {
		t.Fatal("no completed cycle detection recorded")
	}
	scions := 0
	for _, n := range names {
		scions += nodes[n].NumScions()
	}
	if scions != 0 {
		t.Fatalf("%d scions left after reclamation", scions)
	}

	// Final scrape: at least one node carried a detection from first sight to
	// a terminal outcome, so a completed-detection latency sample exists; the
	// transport series rode the same set the whole way.
	final := scrape("/metrics")
	sawSample := false
	for _, line := range strings.Split(final, "\n") {
		if strings.HasPrefix(line, "dgc_detection_latency_seconds_count{") &&
			!strings.HasSuffix(line, " 0") {
			sawSample = true
		}
	}
	if !sawSample {
		t.Fatal("no completed-detection latency sample after reclamation")
	}
	if !strings.Contains(final, "dgc_transport_msgs_sent_total") {
		t.Fatal("transport series missing from the shared metric set")
	}
}
