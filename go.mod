module dgc

go 1.22
