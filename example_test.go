package dgc_test

import (
	"fmt"

	"dgc"
)

// The paper's Figure 3: a garbage cycle spanning four processes that
// reference listing alone can never reclaim. The cycle detector finds it
// and the acyclic collector unravels the objects.
func ExampleNewCluster() {
	c := dgc.NewCluster(1, dgc.Config{})
	if _, err := c.Materialize(dgc.Figure3(), dgc.Config{}); err != nil {
		panic(err)
	}
	fmt.Println("before:", c.TotalObjects(), "objects")
	c.CollectFully(12)
	fmt.Println("after: ", c.TotalObjects(), "objects")
	// Output:
	// before: 14 objects
	// after:  0 objects
}

// Building a distributed object graph through the mutator API: B's object
// stays alive while A references it remotely, and is reclaimed once A
// drops the reference — plain reference listing at work.
func ExampleNode_invoke() {
	c := dgc.NewCluster(1, dgc.Config{}, "A", "B")
	a, b := c.Node("A"), c.Node("B")

	var service dgc.ObjID
	b.With(func(m dgc.Mutator) { service = m.Alloc(nil) })
	ref := dgc.GlobalRef{Node: "B", Obj: service}

	var holder dgc.ObjID
	a.With(func(m dgc.Mutator) {
		holder = m.Alloc(nil)
		if err := m.Root(holder); err != nil {
			panic(err)
		}
	})
	if err := a.AcquireRemote(ref, func(m dgc.Mutator, ok bool) {
		if ok {
			if err := m.Store(holder, ref); err != nil {
				panic(err)
			}
		}
	}); err != nil {
		panic(err)
	}
	c.Settle()

	if err := a.Invoke(ref, "noop", nil, func(_ dgc.Mutator, r dgc.Reply) {
		fmt.Println("invoke ok:", r.OK)
	}); err != nil {
		panic(err)
	}
	c.Settle()

	b.RunLGC()
	fmt.Println("held:", b.NumObjects(), "object")

	a.With(func(m dgc.Mutator) {
		if err := m.Drop(holder, ref); err != nil {
			panic(err)
		}
	})
	a.RunLGC()
	c.Settle()
	b.RunLGC()
	fmt.Println("dropped:", b.NumObjects(), "objects")
	// Output:
	// invoke ok: true
	// held: 1 object
	// dropped: 0 objects
}

// Fault injection: the collector's own traffic is lossy, yet the garbage
// ring is still reclaimed — detection retries each round and stub sets are
// complete, so loss only delays.
func ExampleFaults() {
	c := dgc.NewCluster(12345, dgc.Config{})
	if _, err := c.Materialize(dgc.Ring(3, 1), dgc.Config{}); err != nil {
		panic(err)
	}
	c.Net.SetFaults(dgc.Faults{LossRate: 0.3, Affects: dgc.GCTraffic()})
	rounds := 0
	for c.TotalObjects() > 0 && rounds < 80 {
		c.GCRound()
		rounds++
	}
	fmt.Println("collected under loss:", c.TotalObjects() == 0)
	// Output:
	// collected under loss: true
}

// Persistence: a node's collector state survives a process restart.
func ExampleRestoreNode() {
	c := dgc.NewCluster(1, dgc.Config{}, "A")
	a := c.Node("A")
	a.With(func(m dgc.Mutator) {
		obj := m.Alloc([]byte("durable"))
		if err := m.Root(obj); err != nil {
			panic(err)
		}
	})
	state, err := a.Save()
	if err != nil {
		panic(err)
	}

	// "Restart": restore onto the same endpoint.
	a2, err := dgc.RestoreNode(c.Net.Endpoint("A"), dgc.Config{}, state)
	if err != nil {
		panic(err)
	}
	fmt.Println("restored objects:", a2.NumObjects())
	// Output:
	// restored objects: 1
}
